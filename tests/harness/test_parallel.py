"""Unit tests for the parallel grid executor, job digests and cache."""

import dataclasses
import pickle

import pytest

from repro.harness import ExperimentConfig
from repro.harness.parallel import (
    ProcessExecutor,
    ResultCache,
    RunJob,
    SerialExecutor,
    config_digest,
    enumerate_run_grid,
    make_executor,
    split_by_strategy,
)
from repro.scenarios import get_scenario

TINY = ExperimentConfig(strategy="oblivious-random", n_tasks=60, n_keys=500)


class TestDigest:
    def test_stable_across_equal_configs(self):
        a = config_digest(ExperimentConfig(n_tasks=100), 1)
        b = config_digest(ExperimentConfig(n_tasks=100), 1)
        assert a == b

    def test_sensitive_to_seed_and_fields(self):
        base = config_digest(TINY, 1)
        assert config_digest(TINY, 2) != base
        assert config_digest(dataclasses.replace(TINY, load=0.5), 1) != base

    def test_sensitive_to_nested_fields(self):
        slow = dataclasses.replace(
            TINY, cluster=dataclasses.replace(TINY.cluster, one_way_latency=1e-3)
        )
        assert config_digest(slow, 1) != config_digest(TINY, 1)

    def test_sensitive_to_fault_schedule(self):
        faulty = get_scenario("straggler").build_config(
            strategy="oblivious-random", n_tasks=60
        )
        clean = get_scenario("steady-state").build_config(
            strategy="oblivious-random", n_tasks=60
        )
        assert config_digest(faulty, 1) != config_digest(clean, 1)

    def test_is_hex_sha256(self):
        digest = config_digest(TINY, 1)
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestRunJob:
    def test_jobs_pickle(self):
        job = RunJob(config=TINY, seed=3)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.digest() == job.digest()

    def test_scenario_configs_pickle(self):
        for name in ("straggler", "flash-crowd", "crash-restart"):
            config = get_scenario(name).build_config(
                strategy="oblivious-lor", n_tasks=50
            )
            job = RunJob(config=config, seed=1)
            assert pickle.loads(pickle.dumps(job)) == job

    def test_execute_matches_run_experiment(self):
        from repro.harness import run_experiment

        direct = run_experiment(TINY, seed=2)
        via_job = RunJob(config=TINY, seed=2).execute()
        assert via_job.task_latencies.values() == direct.task_latencies.values()
        assert via_job.extras == direct.extras


class TestExecutors:
    def _grid(self):
        return [
            RunJob(config=TINY.with_strategy(s), seed=seed)
            for s in ("oblivious-random", "oblivious-lor")
            for seed in (1, 2)
        ]

    def test_serial_preserves_grid_order(self):
        jobs = self._grid()
        results = SerialExecutor().run_jobs(jobs)
        assert [(r.config.strategy, r.seed) for r in results] == [
            (j.config.strategy, j.seed) for j in jobs
        ]

    def test_process_pool_matches_serial(self):
        jobs = self._grid()
        serial = SerialExecutor().run_jobs(jobs)
        parallel = ProcessExecutor(jobs=2).run_jobs(jobs)
        for s, p in zip(serial, parallel):
            assert s.seed == p.seed
            assert s.config == p.config
            assert s.task_latencies.values() == p.task_latencies.values()
            assert s.extras == p.extras

    def test_process_executor_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(jobs=-1)

    def test_make_executor_mapping(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ProcessExecutor)
        assert make_executor(4).jobs == 4
        assert isinstance(make_executor(0), ProcessExecutor)  # all cores
        assert make_executor(None).cache is None

    def test_make_executor_cache_dir(self, tmp_path):
        ex = make_executor(1, cache_dir=tmp_path / "c")
        assert ex.cache is not None
        assert ex.cache.root == tmp_path / "c"


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = RunJob(config=TINY, seed=1)
        assert cache.get(job) is None
        result = job.execute()
        cache.put(job, result)
        cached = cache.get(job)
        assert cached is not None
        assert cached.task_latencies.values() == result.task_latencies.values()
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = RunJob(config=TINY, seed=1)
        cache.put(job, job.execute())
        path = cache._path(job.digest())
        path.write_bytes(b"not a pickle")
        assert cache.get(job) is None

    def test_executor_skips_cached_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [RunJob(config=TINY, seed=s) for s in (1, 2)]
        ex = SerialExecutor(cache=cache)
        first = ex.run_jobs(jobs)
        second = ex.run_jobs(jobs)
        assert cache.stores == 2
        assert cache.hits == 2
        for a, b in zip(first, second):
            assert a.task_latencies.values() == b.task_latencies.values()

    def test_default_root_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultCache().root == tmp_path / "envcache"

    def test_cells_stored_as_completed_not_at_batch_end(self, tmp_path):
        """An interrupted grid must keep its finished cells in the cache."""
        cache = ResultCache(tmp_path)
        boom = RunJob(config=TINY.with_strategy("oblivious-lor"), seed=2)

        class Exploding(SerialExecutor):
            def _run_uncached(self, jobs):
                results = []
                for job in jobs:
                    if job == boom:
                        raise KeyboardInterrupt  # simulate Ctrl-C mid-grid
                    result = job.execute()
                    self._store(job, result)
                    results.append(result)
                return results

        jobs = [RunJob(config=TINY, seed=1), boom]
        with pytest.raises(KeyboardInterrupt):
            Exploding(cache=cache).run_jobs(jobs)
        assert cache.stores == 1  # the completed cell survived
        assert cache.get(jobs[0]) is not None

    def test_stale_unpicklable_entry_reads_as_miss(self, tmp_path):
        """Entries whose classes no longer import must not crash the sweep."""
        cache = ResultCache(tmp_path)
        job = RunJob(config=TINY, seed=1)
        path = cache._path(job.digest())
        path.parent.mkdir(parents=True, exist_ok=True)
        # A pickle referencing a module that does not exist anymore.
        path.write_bytes(
            b"\x80\x04\x95\x1e\x00\x00\x00\x00\x00\x00\x00\x8c\x0cgone_module1"
            b"\x94\x8c\x07Missing\x94\x93\x94."
        )
        assert cache.get(job) is None

    def test_short_uncached_batch_raises_immediately(self):
        class Short(SerialExecutor):
            def _run_uncached(self, jobs):
                return []

        with pytest.raises(RuntimeError, match="returned 0 results for 2 jobs"):
            Short().run_jobs([RunJob(config=TINY, seed=s) for s in (1, 2)])


class TestGridHelpers:
    def test_enumerate_order_is_value_strategy_seed(self):
        per_value = {"a": TINY, "b": TINY.with_strategy("oblivious-lor")}
        jobs = enumerate_run_grid([per_value, per_value], seeds=(1, 2))
        coords = [(j.config.strategy, j.seed) for j in jobs]
        assert coords == [
            ("oblivious-random", 1), ("oblivious-random", 2),
            ("oblivious-lor", 1), ("oblivious-lor", 2),
        ] * 2

    def test_split_by_strategy_tiles(self):
        jobs = [
            RunJob(config=TINY.with_strategy(s), seed=seed)
            for s in ("oblivious-random", "oblivious-lor")
            for seed in (1, 2)
        ]
        results = SerialExecutor().run_jobs(jobs)
        grouped = split_by_strategy(results, ("oblivious-random", "oblivious-lor"), 2)
        assert [r.seed for r in grouped["oblivious-random"]] == [1, 2]
        assert all(
            r.config.strategy == "oblivious-lor" for r in grouped["oblivious-lor"]
        )

    def test_split_rejects_ragged_blocks(self):
        with pytest.raises(ValueError, match="does not tile"):
            split_by_strategy([], ("a",), 2)
