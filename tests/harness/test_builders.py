"""Unit tests for the strategy-builder registry."""

import pytest

from repro.cluster.client import DispatchStrategy
from repro.cluster.messages import RequestMessage
from repro.cluster.server import client_address, server_address
from repro.harness import (
    ExperimentConfig,
    KNOWN_STRATEGIES,
    StrategyBuilder,
    get_builder,
    register_strategy,
    run_experiment,
    strategy_names,
    unregister_strategy,
)
from repro.harness.builders import (
    C3Builder,
    CreditsBuilder,
    HedgedBuilder,
    ModelBuilder,
    ObliviousBuilder,
)


class TestRegistry:
    def test_every_known_strategy_resolves(self):
        for name in KNOWN_STRATEGIES:
            builder = get_builder(name)
            assert builder.name == name
            assert builder.description

    def test_known_strategies_matches_seed_set(self):
        assert set(strategy_names()) >= {
            "c3", "c3-norate", "hedged",
            "oblivious-random", "oblivious-rr", "oblivious-lor",
            "equalmax-credits", "unifincr-credits", "fifo-credits",
            "sjf-credits", "edf-credits",
            "equalmax-model", "unifincr-model", "fifo-model", "sjf-model",
        }

    def test_figure2_order_is_first(self):
        assert tuple(KNOWN_STRATEGIES)[:5] == (
            "c3",
            "equalmax-credits",
            "equalmax-model",
            "unifincr-credits",
            "unifincr-model",
        )

    def test_unknown_name_error_lists_known(self):
        with pytest.raises(ValueError, match="unknown strategy.*c3"):
            get_builder("warp-drive")

    def test_builder_classes(self):
        assert isinstance(get_builder("c3"), C3Builder)
        assert isinstance(get_builder("oblivious-rr"), ObliviousBuilder)
        assert isinstance(get_builder("hedged"), HedgedBuilder)
        assert isinstance(get_builder("sjf-credits"), CreditsBuilder)
        assert isinstance(get_builder("unifincr-model"), ModelBuilder)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(HedgedBuilder())

    def test_abstract_name_rejected(self):
        with pytest.raises(ValueError):
            register_strategy(StrategyBuilder())


class _EchoRandomStrategy(DispatchStrategy):
    """Minimal third-party strategy: random replica, no priorities."""

    name = "echo-random"

    def __init__(self, placement, service_model, stream):
        self.placement = placement
        self.service_model = service_model
        self.stream = stream

    def prepare(self, task):
        requests = []
        for op in task.operations:
            partition = self.placement.partition_of(op.key)
            request = RequestMessage(
                op=op,
                task_id=task.task_id,
                client_id=self.client.client_id,
                partition=partition,
                expected_service=self.service_model.expected_time(op.value_size),
            )
            replicas = self.placement.replicas_of(partition)
            request.server_id = replicas[self.stream.randrange(len(replicas))]
            requests.append(request)
        return requests

    def dispatch(self, requests):
        for request in requests:
            request.dispatched_at = self.client.env.now
            self.client.network.send(
                client_address(self.client.client_id),
                server_address(request.server_id),
                request,
            )


class _EchoBuilder(StrategyBuilder):
    name = "test-echo"
    description = "third-party registration test strategy"

    def build_client_strategy(self, ctx, client_id):
        return _EchoRandomStrategy(
            ctx.placement,
            ctx.service_model,
            ctx.streams.stream(f"echo.{client_id}"),
        )


class TestThirdPartyRegistration:
    """KNOWN_STRATEGIES is live: registration makes a strategy usable
    everywhere (config validation, runner) without touching the harness."""

    def setup_method(self):
        register_strategy(_EchoBuilder())

    def teardown_method(self):
        unregister_strategy("test-echo")

    def test_live_view_sees_registration(self):
        assert "test-echo" in KNOWN_STRATEGIES
        unregister_strategy("test-echo")
        assert "test-echo" not in KNOWN_STRATEGIES

    def test_config_accepts_registered_strategy(self):
        cfg = ExperimentConfig(strategy="test-echo", n_tasks=10)
        assert cfg.strategy == "test-echo"

    def test_runner_runs_registered_strategy(self):
        cfg = ExperimentConfig(strategy="test-echo", n_tasks=200, n_keys=2000)
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 200
        assert result.requests_served > 200
