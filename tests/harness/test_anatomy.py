"""Tests for the per-request latency decomposition."""

import pytest

from repro.harness import ExperimentConfig, run_experiment

SMALL = dict(n_tasks=500, n_keys=3000, record_requests=True)


class TestLatencyAnatomy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentConfig(strategy="c3", **SMALL), seed=1)

    def test_samples_populated(self, result):
        assert result.queue_waits is not None
        assert result.service_times is not None
        assert result.client_waits is not None
        assert result.queue_waits.count == result.request_latencies.count
        assert result.service_times.count == result.request_latencies.count
        assert result.client_waits.count == result.request_latencies.count

    def test_decomposition_adds_up(self, result):
        """client wait + network + queue + service == request latency, in
        the mean.  The constant-latency network contributes exactly 2x50us
        per request; means are additive even though percentiles are not.
        """
        network = 2 * 50e-6
        recomposed = (
            result.client_waits.mean
            + network
            + result.queue_waits.mean
            + result.service_times.mean
        )
        assert recomposed == pytest.approx(result.request_latencies.mean, rel=1e-6)

    def test_components_nonnegative(self, result):
        assert result.queue_waits.min >= 0
        assert result.service_times.min > 0

    def test_disabled_by_default(self):
        r = run_experiment(
            ExperimentConfig(strategy="c3", n_tasks=200, n_keys=2000), seed=1
        )
        assert r.queue_waits is None and r.service_times is None
        assert r.client_waits is None

    def test_scheduler_only_moves_queue_wait(self):
        """Same trace, same servers: service times must be identical (the
        deterministic model makes them a pure function of the op), so any
        task-latency difference lives in the schedulable components."""
        c3 = run_experiment(ExperimentConfig(strategy="c3", **SMALL), seed=2)
        brb = run_experiment(
            ExperimentConfig(strategy="unifincr-model", **SMALL), seed=2
        )
        assert brb.service_times.mean == pytest.approx(
            c3.service_times.mean, rel=1e-9
        )
        # The ideal model cuts the *median* queue wait (short requests stop
        # waiting behind convoys)...
        assert brb.queue_waits.quantile(0.5) < c3.queue_waits.quantile(0.5)
        # ...and converts that into better task tails.
        assert brb.summary((99.0,)).p99 < c3.summary((99.0,)).p99
