"""Differential tests: serial and parallel execution must be byte-identical.

The core determinism guarantee of the parallel executor is that fanning a
(value x strategy x seed) grid over worker processes is *invisible* in the
numbers: every aggregate (``SweepResult``, ``ComparisonResult``) serializes
to exactly the same JSON as the serial run.  These tests pin that guarantee
over several scenarios, strategies and seeds, for the sweep entry point,
``run_seeds``, ``figure2`` and the cached re-run path.

The worker count is 2 by default; CI also runs the suite with
``REPRO_TEST_JOBS=2`` explicitly, and the knob lets developers stress
higher fan-out locally (e.g. ``REPRO_TEST_JOBS=8``).
"""

import json
import os

import pytest

from repro.harness import (
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    compare_strategies,
    figure2,
    run_seeds,
    sweep,
)
from repro.scenarios import get_scenario

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))

#: (scenario, swept parameter, values) -- mixed fault scripts on purpose:
#: a clean run, a scripted slowdown, and a skew scenario swept on skew.
SCENARIO_GRID = [
    ("steady-state", "load", [0.5]),
    ("straggler", "load", [0.5, 0.8]),
    ("hotspot-skew", "zipf_skew", [0.9, 1.1]),
]

STRATEGIES = ("oblivious-lor", "unifincr-credits")
SEEDS = (1, 2)
N_TASKS = 220


@pytest.mark.parametrize(
    "scenario,parameter,values",
    SCENARIO_GRID,
    ids=[s for s, _, _ in SCENARIO_GRID],
)
def test_sweep_serial_equals_parallel(scenario, parameter, values):
    kwargs = dict(
        parameter=parameter,
        values=values,
        strategies=STRATEGIES,
        seeds=SEEDS,
        n_tasks=N_TASKS,
    )
    serial = sweep(scenario, **kwargs)
    parallel = sweep(scenario, executor=ProcessExecutor(jobs=JOBS), **kwargs)
    assert serial.canonical_json() == parallel.canonical_json()


def test_sweep_serial_executor_equals_plain_loop():
    """The executor seam itself must not perturb the serial path."""
    kwargs = dict(
        parameter="load",
        values=[0.5, 0.8],
        strategies=STRATEGIES,
        seeds=SEEDS,
        n_tasks=N_TASKS,
    )
    assert (
        sweep("straggler", **kwargs).canonical_json()
        == sweep("straggler", executor=SerialExecutor(), **kwargs).canonical_json()
    )


def test_sweep_with_duplicate_values_serial_equals_parallel():
    """Repeated swept values are distinct grid cells in both modes."""
    kwargs = dict(
        parameter="load",
        values=[0.5, 0.5, 0.8],
        strategies=("oblivious-lor",),
        seeds=(1,),
        n_tasks=120,
    )
    serial = sweep("steady-state", **kwargs)
    parallel = sweep("steady-state", executor=ProcessExecutor(jobs=JOBS), **kwargs)
    assert serial.canonical_json() == parallel.canonical_json()
    assert serial.values == (0.5, 0.5, 0.8)


def test_run_seeds_serial_equals_parallel():
    config = get_scenario("flash-crowd").build_config(
        strategy="oblivious-lor", n_tasks=N_TASKS
    )
    seeds = (1, 2, 3)
    serial = run_seeds(config, seeds)
    parallel = run_seeds(config, seeds, executor=ProcessExecutor(jobs=JOBS))
    a = compare_strategies({config.strategy: serial})
    b = compare_strategies({config.strategy: parallel})
    assert a.canonical_json() == b.canonical_json()
    # Beyond the aggregate: every raw latency list matches exactly.
    for s, p in zip(serial, parallel):
        assert s.task_latencies.values() == p.task_latencies.values()
        assert s.events_processed == p.events_processed
        assert s.extras == p.extras


def test_figure2_serial_equals_parallel():
    serial = figure2(n_tasks=N_TASKS, seeds=(1,), strategies=STRATEGIES)
    parallel = figure2(
        n_tasks=N_TASKS,
        seeds=(1,),
        strategies=STRATEGIES,
        executor=ProcessExecutor(jobs=JOBS),
    )
    assert serial.canonical_json() == parallel.canonical_json()


def test_cached_rerun_is_byte_identical(tmp_path):
    """A warm-cache sweep must reproduce the cold run exactly."""
    cache = ResultCache(tmp_path / "cache")
    kwargs = dict(
        parameter="load",
        values=[0.5, 0.8],
        strategies=STRATEGIES,
        seeds=SEEDS,
        n_tasks=N_TASKS,
    )
    cold = sweep("straggler", executor=ProcessExecutor(jobs=JOBS, cache=cache), **kwargs)
    assert cache.stores == len(kwargs["values"]) * len(STRATEGIES) * len(SEEDS)
    warm = sweep("straggler", executor=SerialExecutor(cache=cache), **kwargs)
    assert cache.hits == cache.stores  # every cell reused, none re-run
    assert cold.canonical_json() == warm.canonical_json()
    # And both agree with a cache-free serial run.
    assert cold.canonical_json() == sweep("straggler", **kwargs).canonical_json()


def test_canonical_json_roundtrips():
    """canonical_json is genuinely JSON (the byte-comparison is meaningful)."""
    result = sweep(
        "steady-state",
        parameter="load",
        values=[0.5],
        strategies=("oblivious-lor",),
        seeds=(1,),
        n_tasks=100,
    )
    assert json.loads(result.canonical_json()) == json.loads(
        json.dumps(result.to_dict(), sort_keys=True)
    )
