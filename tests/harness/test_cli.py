"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "warp-drive"])


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "c3" in out and "unifincr-credits" in out
        assert "*" in out  # figure-2 markers

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "task-oblivious" in out and "task-aware" in out
        assert "1.0" in out and "2.0" in out

    def test_run_small(self, capsys):
        assert main([
            "run", "--strategy", "oblivious-random", "--tasks", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "oblivious-random" in out
        assert "p99" in out

    def test_run_with_slowdown(self, capsys):
        assert main([
            "run", "--strategy", "oblivious-lor", "--tasks", "200",
            "--slow-server", "0",
        ]) == 0
        assert "slowdown_windows" in capsys.readouterr().out

    def test_run_scenario_straggler(self, capsys):
        assert main([
            "run", "--scenario", "straggler", "--strategy", "oblivious-lor",
            "--tasks", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "[straggler]" in out
        assert "fault: slowdown x4" in out
        assert "slowdown_windows" in out

    def test_run_scenario_overrides_compose(self, capsys):
        assert main([
            "run", "--scenario", "hotspot-skew", "--strategy",
            "oblivious-random", "--tasks", "200", "--load", "0.5",
        ]) == 0
        assert "load=50%" in capsys.readouterr().out

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])

    def test_scenarios_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("steady-state", "straggler", "recurring-gc",
                     "flash-crowd", "hotspot-skew", "heterogeneous-cluster"):
            assert name in out

    def test_scenarios_verbose_shows_faults(self, capsys):
        assert main(["scenarios", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "fault:" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["trace", "generate", str(path), "--tasks", "100"]) == 0
        assert main(["trace", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mean_fanout" in out

    def test_run_single_seed_honors_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["run", "--strategy", "oblivious-random", "--tasks", "150",
                "--cache", str(cache_dir)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # cached cell reproduces the run exactly
        assert any(cache_dir.rglob("*.pkl"))

    def test_run_multi_seed_with_jobs(self, capsys):
        assert main([
            "run", "--strategy", "oblivious-random", "--tasks", "150",
            "--seeds", "2", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "seeds 1..2" in out
        assert "p99 across seeds" in out

    def test_sweep_serial(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "--parameter", "load", "--values", "0.4,0.7",
            "--strategies", "oblivious-random,oblivious-lor",
            "--tasks", "150", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep over load" in out
        data = json.loads(out_path.read_text())
        assert data["values"] == [0.4, 0.7]
        assert set(data["points"]) == {"0.4", "0.7"}

    def test_sweep_parallel_with_cache_matches_serial(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        argv_tail = [
            "--parameter", "load", "--values", "0.5",
            "--strategies", "oblivious-random", "--tasks", "150",
        ]
        assert main(["sweep", *argv_tail, "--out", str(serial_out)]) == 0
        assert main([
            "sweep", *argv_tail, "--jobs", "2",
            "--cache", str(cache_dir), "--out", str(parallel_out),
        ]) == 0
        assert "cache: 0 hits, 1 misses, 1 stores" in capsys.readouterr().out
        assert json.loads(serial_out.read_text()) == json.loads(
            parallel_out.read_text()
        )
        # Third run: every cell served from cache.
        assert main([
            "sweep", *argv_tail, "--cache", str(cache_dir),
        ]) == 0
        assert "cache: 1 hits, 0 misses, 0 stores" in capsys.readouterr().out

    def test_sweep_scenario_base(self, capsys):
        assert main([
            "sweep", "--scenario", "hotspot-skew", "--parameter", "zipf_skew",
            "--values", "0.9,1.1", "--strategies", "oblivious-random",
            "--tasks", "150",
        ]) == 0
        assert "sweep over zipf_skew" in capsys.readouterr().out

    def test_figure2_tiny(self, tmp_path, capsys):
        out_path = tmp_path / "fig2.json"
        assert main([
            "figure2", "--tasks", "200", "--seeds", "1", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "equalmax-credits" in out
        data = json.loads(out_path.read_text())
        assert set(data["strategies"]) == {
            "c3", "equalmax-credits", "equalmax-model",
            "unifincr-credits", "unifincr-model",
        }


class TestScenariosJson:
    def test_json_listing_is_machine_readable(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) >= 8
        by_name = {entry["name"]: entry for entry in data}
        assert "steady-state" in by_name and "straggler" in by_name
        straggler = by_name["straggler"]
        assert straggler["faults"][0]["kind"] == "slowdown"
        assert straggler["faults"][0]["factor"] == 4.0
        assert by_name["flash-crowd"]["config_overrides"]["load"] == 0.60

    def test_infinite_durations_stay_json_safe(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        hetero = next(e for e in data if e["name"] == "heterogeneous-cluster")
        assert hetero["faults"][0]["duration"] == "inf"


class TestCacheCommand:
    def _populate(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "run", "--strategy", "oblivious-random", "--tasks", "100",
            "--cache", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        return cache_dir

    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "digest_prefix" in out

    def test_clear_then_stats_empty_and_idempotent(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "removed 0" in capsys.readouterr().out  # idempotent
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_stats_on_missing_dir_is_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path / "nope")]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestLiveCommands:
    def test_loadgen_refuses_unreachable_server(self, capsys):
        # Port 1 on loopback: nothing listens there.
        code = main([
            "loadgen", "--scenario", "steady-state", "--tasks", "10",
            "--port", "1",
        ])
        assert code == 1
        assert "loadgen failed" in capsys.readouterr().err

    def test_compare_rejects_unknown_strategy(self, capsys):
        assert main([
            "compare", "--strategy", "c3,warp-drive", "--tasks", "10",
        ]) == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_loadgen_rejects_model_strategies(self, capsys):
        assert main([
            "loadgen", "--strategy", "unifincr-model", "--tasks", "10",
        ]) == 2
        assert "unrealizable" in capsys.readouterr().err

    def test_compare_rejects_model_strategies_before_any_run(self, capsys):
        assert main([
            "compare", "--strategy", "c3,unifincr-model", "--tasks", "10",
        ]) == 2
        err = capsys.readouterr().err
        assert "unrealizable" in err
