"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "warp-drive"])


class TestCommands:
    def test_strategies_lists_all(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "c3" in out and "unifincr-credits" in out
        assert "*" in out  # figure-2 markers

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "task-oblivious" in out and "task-aware" in out
        assert "1.0" in out and "2.0" in out

    def test_run_small(self, capsys):
        assert main([
            "run", "--strategy", "oblivious-random", "--tasks", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "oblivious-random" in out
        assert "p99" in out

    def test_run_with_slowdown(self, capsys):
        assert main([
            "run", "--strategy", "oblivious-lor", "--tasks", "200",
            "--slow-server", "0",
        ]) == 0
        assert "slowdown_windows" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["trace", "generate", str(path), "--tasks", "100"]) == 0
        assert main(["trace", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mean_fanout" in out

    def test_figure2_tiny(self, tmp_path, capsys):
        out_path = tmp_path / "fig2.json"
        assert main([
            "figure2", "--tasks", "200", "--seeds", "1", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "equalmax-credits" in out
        data = json.loads(out_path.read_text())
        assert set(data["strategies"]) == {
            "c3", "equalmax-credits", "equalmax-model",
            "unifincr-credits", "unifincr-model",
        }
