"""Integration-grade unit tests for the experiment runner.

Small task counts keep each run fast; the benchmarks exercise full scale.
"""

import pytest

from repro.harness import ExperimentConfig, run_experiment, run_seeds

SMALL = dict(n_tasks=400, n_keys=2000)


def small_cfg(strategy, **kw):
    args = dict(SMALL)
    args.update(kw)
    return ExperimentConfig(strategy=strategy, **args)


class TestRunExperiment:
    @pytest.mark.parametrize(
        "strategy",
        [
            "c3",
            "c3-norate",
            "oblivious-random",
            "oblivious-rr",
            "oblivious-lor",
            "equalmax-credits",
            "unifincr-credits",
            "fifo-credits",
            "sjf-credits",
            "edf-credits",
            "equalmax-model",
            "unifincr-model",
            "fifo-model",
            "sjf-model",
        ],
    )
    def test_every_strategy_completes_all_tasks(self, strategy):
        result = run_experiment(small_cfg(strategy), seed=1)
        assert result.tasks_completed == 400
        assert result.requests_served > 400  # fan-out > 1
        assert result.task_latencies.count == result.tasks_measured
        assert result.sim_duration > 0

    def test_warmup_exclusion(self):
        cfg = small_cfg("oblivious-random", warmup_fraction=0.25)
        result = run_experiment(cfg, seed=1)
        assert result.tasks_measured == 300
        assert result.tasks_completed == 400

    def test_deterministic_given_seed(self):
        cfg = small_cfg("equalmax-credits")
        r1 = run_experiment(cfg, seed=7)
        r2 = run_experiment(cfg, seed=7)
        assert r1.task_latencies.values() == r2.task_latencies.values()
        assert r1.events_processed == r2.events_processed

    def test_seeds_differ(self):
        cfg = small_cfg("oblivious-lor")
        r1 = run_experiment(cfg, seed=1)
        r2 = run_experiment(cfg, seed=2)
        assert r1.task_latencies.values() != r2.task_latencies.values()

    def test_request_recording_optional(self):
        cfg = small_cfg("oblivious-random", record_requests=True)
        result = run_experiment(cfg, seed=1)
        assert result.request_latencies is not None
        assert result.request_latencies.count == result.requests_served

    def test_credits_extras_present(self):
        result = run_experiment(small_cfg("equalmax-credits"), seed=1)
        assert "congestion_signals" in result.extras
        assert "gated_requests" in result.extras

    def test_model_extras_present(self):
        result = run_experiment(small_cfg("unifincr-model"), seed=1)
        assert result.extras["global_queue_submitted"] == result.requests_served

    def test_summary_has_requested_percentiles(self):
        result = run_experiment(small_cfg("c3-norate"), seed=1)
        summary = result.summary((50.0, 95.0, 99.0))
        assert summary.percentile(50.0) <= summary.percentile(95.0)
        assert summary.percentile(95.0) <= summary.percentile(99.0)

    def test_latencies_exceed_network_floor(self):
        """No task can beat two one-way latencies plus one service time."""
        result = run_experiment(small_cfg("oblivious-random"), seed=3)
        floor = 2 * 50e-6
        assert result.task_latencies.min > floor


class TestRunSeeds:
    def test_runs_each_seed(self):
        results = run_seeds(small_cfg("oblivious-random"), seeds=[1, 2, 3])
        assert [r.seed for r in results] == [1, 2, 3]

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(small_cfg("c3"), seeds=[])
