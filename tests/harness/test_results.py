"""Unit tests for result aggregation across strategies and seeds."""

import json

import pytest

from repro.harness import ExperimentConfig, compare_strategies, run_seeds
from repro.harness.results import StrategyResult


@pytest.fixture(scope="module")
def small_comparison():
    cfg = ExperimentConfig(n_tasks=300, n_keys=2000)
    seeds = [1, 2]
    results = {
        name: run_seeds(cfg.with_strategy(name), seeds)
        for name in ("oblivious-random", "oblivious-lor")
    }
    return compare_strategies(results)


class TestStrategyResult:
    def test_mean_summary_averages_seeds(self, small_comparison):
        sres = small_comparison.strategies["oblivious-random"]
        per_seed = sres.per_seed_summaries()
        mean = sres.mean_summary()
        for p in (50.0, 95.0, 99.0):
            manual = sum(s.percentile(p) for s in per_seed) / len(per_seed)
            assert mean.percentile(p) == pytest.approx(manual)

    def test_percentile_spread(self, small_comparison):
        lo, hi = small_comparison.strategies["oblivious-random"].percentile_spread(99.0)
        assert lo <= hi

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            StrategyResult(strategy="x", runs=[])


class TestComparisonResult:
    def test_speedup_is_ratio(self, small_comparison):
        ratios = small_comparison.speedup("oblivious-random", "oblivious-lor")
        manual = small_comparison.summary_of("oblivious-random").percentile(
            50.0
        ) / small_comparison.summary_of("oblivious-lor").percentile(50.0)
        assert ratios[50.0] == pytest.approx(manual)

    def test_gap_to_ideal_sign(self, small_comparison):
        gaps = small_comparison.gap_to_ideal("oblivious-random", "oblivious-lor")
        for p, gap in gaps.items():
            ratio = small_comparison.speedup("oblivious-random", "oblivious-lor")[p]
            assert gap == pytest.approx(ratio - 1.0)

    def test_to_dict_and_json(self, small_comparison, tmp_path):
        d = small_comparison.to_dict()
        assert d["seeds"] == [1, 2]
        assert "oblivious-random" in d["strategies"]
        entry = d["strategies"]["oblivious-random"]
        assert "p99" in entry["percentiles_ms"]
        assert len(entry["per_seed_p99_ms"]) == 2
        path = tmp_path / "out.json"
        small_comparison.save_json(path)
        assert json.loads(path.read_text())["seeds"] == [1, 2]

    def test_mismatched_seed_grids_rejected(self):
        cfg = ExperimentConfig(n_tasks=100, n_keys=1000)
        a = run_seeds(cfg.with_strategy("oblivious-random"), [1])
        b = run_seeds(cfg.with_strategy("oblivious-lor"), [2])
        with pytest.raises(ValueError, match="seed grid"):
            compare_strategies({"a": a, "b": b})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_strategies({})
