"""Tests for the figure regeneration entry points.

Figure 1 is fully deterministic and asserted exactly.  Figure 2 at test
scale only checks plumbing (the benchmark asserts the paper's shape at
full scale).
"""

import pytest

from repro.harness import figure1_toy, figure2, figure2_series


class TestFigure1:
    """The paper's worked example, reproduced exactly.

    "doing otherwise results in a suboptimal schedule where T2 completes
    in 2 time units whereas in the optimal schedule the completion time of
    T2 is just 1 time unit."
    """

    def test_oblivious_schedule(self):
        result = figure1_toy(task_aware=False)
        assert result.t1_completion == pytest.approx(2.0)
        assert result.t2_completion == pytest.approx(2.0)

    @pytest.mark.parametrize("assigner", ["unifincr", "equalmax"])
    def test_task_aware_schedule(self, assigner):
        result = figure1_toy(task_aware=True, assigner_name=assigner)
        assert result.t1_completion == pytest.approx(2.0)  # B,C serialize
        assert result.t2_completion == pytest.approx(1.0)  # the paper's win

    def test_labels(self):
        assert figure1_toy(task_aware=False).schedule == "task-oblivious"
        assert figure1_toy(task_aware=True).schedule == "task-aware"


class TestFigure2Plumbing:
    @pytest.fixture(scope="class")
    def tiny(self):
        return figure2(
            n_tasks=300,
            seeds=(1,),
            strategies=("c3", "equalmax-model"),
            n_keys=2000,
        )

    def test_strategies_present(self, tiny):
        assert set(tiny.strategies) == {"c3", "equalmax-model"}

    def test_series_pivot(self, tiny):
        series = figure2_series(tiny)
        assert set(series) == {"p50", "p95", "p99"}
        assert set(series["p99"]) == {"c3", "equalmax-model"}
        for row in series.values():
            for v in row.values():
                assert v > 0  # milliseconds, positive

    def test_speedup_computable(self, tiny):
        ratios = tiny.speedup("c3", "equalmax-model")
        assert set(ratios) == {50.0, 95.0, 99.0}
