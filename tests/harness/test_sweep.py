"""Unit tests for the generic parameter-sweep API."""

import pytest

from repro.harness import ExperimentConfig
from repro.harness.sweep import SweepResult, _replace_parameter, sweep


class TestReplaceParameter:
    def test_top_level_field(self):
        cfg = _replace_parameter(ExperimentConfig(), "load", 0.5)
        assert cfg.load == 0.5

    def test_cluster_field(self):
        cfg = _replace_parameter(
            ExperimentConfig(), "cluster.one_way_latency", 1e-3
        )
        assert cfg.cluster.one_way_latency == 1e-3
        assert cfg.cluster.n_servers == 9  # other fields preserved

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            _replace_parameter(ExperimentConfig(), "does_not_exist", 1)
        with pytest.raises(ValueError):
            _replace_parameter(ExperimentConfig(), "cluster.nope", 1)
        with pytest.raises(ValueError):
            _replace_parameter(ExperimentConfig(), "workload.load", 1)

    def test_unknown_top_level_message_names_field_and_candidates(self):
        with pytest.raises(ValueError) as exc:
            _replace_parameter(ExperimentConfig(), "does_not_exist", 1)
        msg = str(exc.value)
        assert "unknown config field 'does_not_exist'" in msg
        assert "ExperimentConfig" in msg
        assert "n_tasks" in msg  # candidates listed

    def test_unknown_nested_message_shows_full_path(self):
        with pytest.raises(ValueError) as exc:
            _replace_parameter(ExperimentConfig(), "cluster.warp_factor", 1)
        msg = str(exc.value)
        assert "unknown config field 'cluster.warp_factor'" in msg
        assert "ClusterSpec" in msg
        assert "n_servers" in msg

    def test_descending_into_non_dataclass_rejected(self):
        with pytest.raises(ValueError, match="cannot descend into 'load'"):
            _replace_parameter(ExperimentConfig(), "load.deeper", 1)

    def test_malformed_paths_rejected(self):
        for path in ("cluster.", ".load", "cluster..n_servers"):
            with pytest.raises(ValueError, match="malformed parameter path"):
                _replace_parameter(ExperimentConfig(), path, 1)

    def test_arbitrary_depth_via_nested_dataclass(self):
        """Paths deeper than one level work for any dataclass chain."""
        import dataclasses as dc

        @dc.dataclass(frozen=True)
        class Inner:
            knob: int = 1

        @dc.dataclass(frozen=True)
        class Middle:
            inner: Inner = dc.field(default_factory=Inner)

        @dc.dataclass(frozen=True)
        class Outer:
            middle: Middle = dc.field(default_factory=Middle)

        out = _replace_parameter(Outer(), "middle.inner.knob", 7)
        assert out.middle.inner.knob == 7
        with pytest.raises(ValueError) as exc:
            _replace_parameter(Outer(), "middle.inner.missing", 7)
        assert "unknown config field 'middle.inner.missing'" in str(exc.value)


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep(
            ExperimentConfig(n_tasks=200, n_keys=2000),
            parameter="load",
            values=[0.4, 0.7],
            strategies=("oblivious-random", "oblivious-lor"),
            seeds=(1,),
        )

    def test_structure(self, small_sweep):
        assert small_sweep.values == (0.4, 0.7)
        assert set(small_sweep.comparisons) == {0.4, 0.7}
        for comparison in small_sweep.comparisons.values():
            assert set(comparison.strategies) == {
                "oblivious-random",
                "oblivious-lor",
            }

    def test_percentile_series(self, small_sweep):
        series = small_sweep.percentile_series("oblivious-lor", 99.0)
        assert [v for v, _ in series] == [0.4, 0.7]
        assert all(latency > 0 for _, latency in series)

    def test_speedup_series(self, small_sweep):
        series = small_sweep.speedup_series(
            "oblivious-random", "oblivious-lor", 50.0
        )
        assert len(series) == 2
        assert all(ratio > 0 for _, ratio in series)

    def test_rows_and_render(self, small_sweep):
        rows = small_sweep.rows(99.0)
        assert len(rows) == 2
        assert "load" in rows[0]
        text = small_sweep.render(99.0)
        assert "sweep over load" in text

    def test_to_dict(self, small_sweep):
        d = small_sweep.to_dict()
        assert d["parameter"] == "load"
        assert set(d["points"]) == {"0.4", "0.7"}

    def test_validates(self):
        with pytest.raises(ValueError):
            sweep(ExperimentConfig(), "load", [], ("c3",))
        with pytest.raises(ValueError):
            sweep(ExperimentConfig(), "load", [0.5], ())


class TestScenarioSweep:
    def test_scenario_name_as_base(self):
        result = sweep(
            "hotspot-skew",
            parameter="zipf_skew",
            values=[0.9, 1.2],
            strategies=("oblivious-random",),
            seeds=(1,),
            n_tasks=200,
        )
        assert result.values == (0.9, 1.2)
        for comparison in result.comparisons.values():
            runs = comparison.strategies["oblivious-random"].runs
            assert all(r.config.scenario == "hotspot-skew" for r in runs)
            assert all(r.config.n_tasks == 200 for r in runs)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            sweep("nope", "load", [0.5], ("c3",))

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            sweep(ExperimentConfig(n_tasks=10), "load", [0.5], ("warp-drive",))

    def test_n_tasks_requires_scenario(self):
        with pytest.raises(ValueError, match="only meaningful"):
            sweep(ExperimentConfig(n_tasks=10), "load", [0.5],
                  ("oblivious-random",), n_tasks=100)
