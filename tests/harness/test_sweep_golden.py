"""Golden-file regression test for ``SweepResult.to_dict()``.

A tiny fixed-seed load sweep must serialize exactly to the checked-in
fixture, so result-merging refactors (including the parallel executor)
cannot silently reorder points, renumber seeds, or drift percentiles.

To regenerate the fixture after an *intentional* change to result
semantics, run::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/harness/test_sweep_golden.py

and commit the diff with an explanation of why the numbers moved.
"""

import json
import os
from pathlib import Path

from repro.harness import ExperimentConfig, ProcessExecutor, sweep

FIXTURE = Path(__file__).parent / "fixtures" / "sweep_golden.json"

GOLDEN_KWARGS = dict(
    parameter="load",
    values=[0.4, 0.7],
    strategies=("oblivious-random", "oblivious-lor"),
    seeds=(1, 2),
)


def _golden_sweep(**extra):
    return sweep(
        ExperimentConfig(n_tasks=150, n_keys=1000), **GOLDEN_KWARGS, **extra
    )


def test_sweep_to_dict_matches_golden_fixture():
    result = _golden_sweep()
    produced = json.loads(json.dumps(result.to_dict(), sort_keys=True))
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
        FIXTURE.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert produced == expected, (
        "SweepResult.to_dict() drifted from the golden fixture; if the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_parallel_sweep_matches_golden_fixture():
    """The fixture also pins the parallel merge path, end to end."""
    result = _golden_sweep(executor=ProcessExecutor(jobs=2))
    produced = json.loads(result.canonical_json())
    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert produced == expected


def test_fixture_shape_sanity():
    """Guard the fixture itself against accidental truncation."""
    data = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert data["parameter"] == "load"
    assert data["values"] == [0.4, 0.7]
    assert set(data["points"]) == {"0.4", "0.7"}
    for point in data["points"].values():
        assert point["seeds"] == [1, 2]
        assert set(point["strategies"]) == {"oblivious-random", "oblivious-lor"}
        for strat in point["strategies"].values():
            assert len(strat["per_seed_p99_ms"]) == 2
            assert strat["count"] > 0
