"""Unit tests for server queue disciplines."""

import pytest

from repro.cluster import RequestMessage
from repro.scheduling import (
    EdfDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
    SjfDiscipline,
    make_discipline,
)
from repro.workload.tasks import Operation


def req(op_id=0, size=100, priority=(0.0,), expected=0.0, created=0.0, bottleneck=0.0):
    r = RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=size),
        task_id=0,
        client_id=0,
        partition=0,
        priority=priority,
        expected_service=expected,
        bottleneck_cost=bottleneck,
    )
    r.created_at = created
    return r


class TestFifo:
    def test_keys_increase_with_arrival(self):
        d = FifoDiscipline()
        k1 = d.key(req(op_id=1), now=0.0)
        k2 = d.key(req(op_id=2), now=0.0)
        assert k1 < k2

    def test_independent_instances(self):
        d1, d2 = FifoDiscipline(), FifoDiscipline()
        assert d1.key(req(), 0.0) == d2.key(req(), 0.0)


class TestSjf:
    def test_orders_by_forecast(self):
        d = SjfDiscipline()
        assert d.key(req(expected=1.0), 0.0) < d.key(req(expected=2.0), 0.0)


class TestEdf:
    def test_orders_by_deadline(self):
        d = EdfDiscipline()
        early = req(created=0.0, bottleneck=1.0)
        late = req(created=0.0, bottleneck=5.0)
        assert d.key(early, 0.0) < d.key(late, 0.0)

    def test_older_task_with_same_bottleneck_wins(self):
        d = EdfDiscipline()
        old = req(created=0.0, bottleneck=2.0)
        new = req(created=1.0, bottleneck=2.0)
        assert d.key(old, 5.0) < d.key(new, 5.0)


class TestPriority:
    def test_uses_request_priority_tuple(self):
        d = PriorityDiscipline()
        assert d.key(req(priority=(1.0, 0.0, 0.0)), 0.0) < d.key(
            req(priority=(2.0, 0.0, 0.0)), 0.0
        )

    def test_lexicographic_tie_break(self):
        d = PriorityDiscipline()
        assert d.key(req(priority=(1.0, 0.5, 0.0)), 0.0) < d.key(
            req(priority=(1.0, 0.7, 0.0)), 0.0
        )


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fifo", FifoDiscipline),
            ("sjf", SjfDiscipline),
            ("edf", EdfDiscipline),
            ("priority", PriorityDiscipline),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_discipline(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            make_discipline("lifo")
