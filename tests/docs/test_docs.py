"""Documentation lint: docstrings, link integrity, CLI-reference sync.

Three guarantees, run in CI's ``docs`` job:

* every module, public class and public function in
  ``src/repro/placement/`` carries a docstring (the layer the docs book
  leans on hardest);
* every relative link in ``docs/*.md`` (and the README) resolves to a
  real file, and every ``repro <command>`` mentioned in the docs is a
  real subcommand of the live parser;
* ``docs/cli.md`` matches what ``repro docs-cli`` renders from the
  argparse tree -- the CLI reference cannot drift.
"""

import ast
import re
from pathlib import Path

import pytest

from repro.cli import build_parser, render_cli_docs

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"
PLACEMENT = REPO / "src" / "repro" / "placement"

DOC_FILES = sorted(DOCS.glob("*.md"))
LINKED_FILES = DOC_FILES + [REPO / "README.md", REPO / "PAPER.md"]


def _public_defs(tree):
    """(name, node) for every public class/function, methods included."""
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            yield node


class TestPlacementDocstrings:
    @pytest.mark.parametrize(
        "path", sorted(PLACEMENT.glob("*.py")), ids=lambda p: p.name
    )
    def test_module_and_public_defs_documented(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name}: missing module docstring"
        missing = [
            f"{path.name}:{node.lineno} {node.name}"
            for node in _public_defs(tree)
            if not ast.get_docstring(node)
        ]
        assert not missing, "missing docstrings:\n  " + "\n  ".join(missing)


LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


class TestDocLinks:
    def test_docs_book_exists(self):
        names = {p.name for p in DOC_FILES}
        assert {
            "architecture.md",
            "scenarios.md",
            "results.md",
            "cli.md",
            "performance.md",
        } <= names

    @pytest.mark.parametrize(
        "path", LINKED_FILES, ids=lambda p: p.relative_to(REPO).as_posix()
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in LINK.findall(path.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken links {broken}"

    def test_referenced_cli_commands_exist(self):
        """Every `repro <cmd>` in backticked doc text is a real command."""
        parser = build_parser()
        known = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                known |= set(action.choices)
        mention = re.compile(r"`(?:python -m )?repro ([a-z][a-z0-9-]*)")
        unknown = []
        for path in LINKED_FILES:
            for cmd in mention.findall(path.read_text(encoding="utf-8")):
                if cmd not in known:
                    unknown.append(f"{path.name}: repro {cmd}")
        assert not unknown, "docs mention unknown commands:\n  " + "\n  ".join(
            unknown
        )

    def test_referenced_source_paths_exist(self):
        """Every `src/...` path mentioned in the docs book exists."""
        path_ref = re.compile(r"`(src/[\w/.-]+)`")
        missing = []
        for path in DOC_FILES:
            for ref in path_ref.findall(path.read_text(encoding="utf-8")):
                if not (REPO / ref).exists():
                    missing.append(f"{path.name}: {ref}")
        assert not missing, "docs reference missing paths:\n  " + "\n  ".join(
            missing
        )

    def test_referenced_test_and_bench_paths_exist(self):
        """`tests/...` and `benchmarks/...` paths in the docs resolve too.

        The performance book leans on these (bench modules, the perf
        gate script, the differential suites); a rename must not leave
        the book pointing at nothing.
        """
        path_ref = re.compile(r"`((?:tests|benchmarks|results)/[\w/.-]+)`")
        missing = []
        for path in DOC_FILES:
            for ref in path_ref.findall(path.read_text(encoding="utf-8")):
                base = ref.split("::", 1)[0]
                if not (REPO / base).exists():
                    missing.append(f"{path.name}: {ref}")
        assert not missing, "docs reference missing paths:\n  " + "\n  ".join(
            missing
        )


class TestScenarioCatalog:
    def test_every_registered_scenario_cataloged(self):
        from repro.scenarios import scenario_names

        text = (DOCS / "scenarios.md").read_text(encoding="utf-8")
        missing = [n for n in scenario_names() if f"`{n}`" not in text]
        assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"


class TestPerformanceBook:
    """The performance book must stay wired to the things it documents."""

    def test_mentions_profile_command_and_artifacts(self):
        text = (DOCS / "performance.md").read_text(encoding="utf-8")
        assert "`repro profile" in text or "repro profile" in text
        assert "results/event_throughput.json" in text
        assert "event_throughput_baseline.json" in text

    def test_perf_gate_script_exists_and_matches_doc(self):
        text = (DOCS / "performance.md").read_text(encoding="utf-8")
        gate = REPO / "benchmarks" / "check_event_throughput.py"
        assert gate.exists()
        assert "check_event_throughput.py" in text

    def test_committed_baseline_has_both_engines(self):
        import json

        baseline = json.loads(
            (REPO / "results" / "event_throughput_baseline.json").read_text()
        )
        assert "pre_pr" in baseline and "current" in baseline
        assert baseline["calibration_spins_per_sec"] > 0
        assert "micro" in baseline["pre_pr"]
        # The 'current' block is what the perf-smoke gate reads: every
        # gated section must exist and carry a normalized rate, or the
        # gate fails with a confusing message instead of this assert.
        current = baseline["current"]
        assert current["calibration_spins_per_sec"] > 0
        for section in ("micro", "micro_callback"):
            assert current[section]["normalized"] > 0, section
        for strategy, entry in current["strategies"].items():
            assert entry["normalized"] > 0, strategy
            assert entry["tasks_per_sec"] > 0, strategy

    def test_documented_speedup_claim_holds_in_baseline(self):
        """The book's >=2x headline must match the committed baseline.

        Deliberately asserted against the *baseline* file (which only
        changes via the explicit ``--update-baseline`` workflow), not
        ``results/event_throughput.json`` — the bench regenerates the
        latter with machine-dependent numbers, and a slower laptop must
        not make the unit-test suite fail.
        """
        import json

        baseline = json.loads(
            (REPO / "results" / "event_throughput_baseline.json").read_text()
        )
        pre = baseline["pre_pr"]["micro"]["events_per_sec"]
        pre_norm = pre / baseline["calibration_spins_per_sec"]
        cur = baseline["current"]["micro"]["normalized"]
        assert cur / pre_norm >= 2.0, (
            "the committed baseline no longer records the >=2x micro "
            "speedup the performance book claims"
        )


class TestCliReference:
    def test_cli_md_is_in_sync(self):
        committed = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert committed == render_cli_docs(), (
            "docs/cli.md is stale; regenerate with "
            "`repro docs-cli --out docs/cli.md`"
        )

    def test_every_subcommand_documented(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                for name in action.choices:
                    assert f"## `repro {name}`" in text, f"{name} undocumented"
