"""Documentation lint: docstrings, link integrity, CLI-reference sync.

Three guarantees, run in CI's ``docs`` job:

* every module, public class and public function in
  ``src/repro/placement/`` carries a docstring (the layer the docs book
  leans on hardest);
* every relative link in ``docs/*.md`` (and the README) resolves to a
  real file, and every ``repro <command>`` mentioned in the docs is a
  real subcommand of the live parser;
* ``docs/cli.md`` matches what ``repro docs-cli`` renders from the
  argparse tree -- the CLI reference cannot drift.
"""

import ast
import re
from pathlib import Path

import pytest

from repro.cli import build_parser, render_cli_docs

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"
PLACEMENT = REPO / "src" / "repro" / "placement"

DOC_FILES = sorted(DOCS.glob("*.md"))
LINKED_FILES = DOC_FILES + [REPO / "README.md", REPO / "PAPER.md"]


def _public_defs(tree):
    """(name, node) for every public class/function, methods included."""
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            yield node


class TestPlacementDocstrings:
    @pytest.mark.parametrize(
        "path", sorted(PLACEMENT.glob("*.py")), ids=lambda p: p.name
    )
    def test_module_and_public_defs_documented(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name}: missing module docstring"
        missing = [
            f"{path.name}:{node.lineno} {node.name}"
            for node in _public_defs(tree)
            if not ast.get_docstring(node)
        ]
        assert not missing, "missing docstrings:\n  " + "\n  ".join(missing)


LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


class TestDocLinks:
    def test_docs_book_exists(self):
        names = {p.name for p in DOC_FILES}
        assert {"architecture.md", "scenarios.md", "results.md", "cli.md"} <= names

    @pytest.mark.parametrize(
        "path", LINKED_FILES, ids=lambda p: p.relative_to(REPO).as_posix()
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in LINK.findall(path.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken links {broken}"

    def test_referenced_cli_commands_exist(self):
        """Every `repro <cmd>` in backticked doc text is a real command."""
        parser = build_parser()
        known = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                known |= set(action.choices)
        mention = re.compile(r"`(?:python -m )?repro ([a-z][a-z0-9-]*)")
        unknown = []
        for path in LINKED_FILES:
            for cmd in mention.findall(path.read_text(encoding="utf-8")):
                if cmd not in known:
                    unknown.append(f"{path.name}: repro {cmd}")
        assert not unknown, "docs mention unknown commands:\n  " + "\n  ".join(
            unknown
        )

    def test_referenced_source_paths_exist(self):
        """Every `src/...` path mentioned in the docs book exists."""
        path_ref = re.compile(r"`(src/[\w/.-]+)`")
        missing = []
        for path in DOC_FILES:
            for ref in path_ref.findall(path.read_text(encoding="utf-8")):
                if not (REPO / ref).exists():
                    missing.append(f"{path.name}: {ref}")
        assert not missing, "docs reference missing paths:\n  " + "\n  ".join(
            missing
        )


class TestScenarioCatalog:
    def test_every_registered_scenario_cataloged(self):
        from repro.scenarios import scenario_names

        text = (DOCS / "scenarios.md").read_text(encoding="utf-8")
        missing = [n for n in scenario_names() if f"`{n}`" not in text]
        assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"


class TestCliReference:
    def test_cli_md_is_in_sync(self):
        committed = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert committed == render_cli_docs(), (
            "docs/cli.md is stale; regenerate with "
            "`repro docs-cli --out docs/cli.md`"
        )

    def test_every_subcommand_documented(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                for name in action.choices:
                    assert f"## `repro {name}`" in text, f"{name} undocumented"
