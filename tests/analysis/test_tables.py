"""Unit tests for table rendering."""

import pytest

from repro.analysis import percentile_matrix, ratio_table, render_table


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.25}]
        out = render_table(rows)
        lines = out.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert set(lines[1]) <= {"-", " "}
        assert "1.500" in out and "20.250" in out

    def test_title(self):
        out = render_table([{"x": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_selection(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_missing_cells_blank(self):
        out = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert out  # renders without KeyError

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table([])

    def test_custom_float_format(self):
        out = render_table([{"v": 1.23456}], float_fmt=".1f")
        assert "1.2" in out and "1.23" not in out


class TestPercentileMatrix:
    def test_figure2_shape(self):
        out = percentile_matrix(
            {
                "c3": {50.0: 0.004, 99.0: 0.014},
                "brb": {50.0: 0.0013, 99.0: 0.007},
            },
            percentiles=(50.0, 99.0),
        )
        lines = out.splitlines()
        assert "p50 (ms)" in lines[0] and "p99 (ms)" in lines[0]
        assert any("c3" in l for l in lines)
        assert "4.000" in out  # seconds converted to ms


class TestRatioTable:
    def test_renders_multipliers(self):
        out = ratio_table({50.0: 3.1, 99.0: 2.05}, label="C3 / BRB")
        assert "3.10x" in out and "2.05x" in out
        assert "p50" in out and "p99" in out
