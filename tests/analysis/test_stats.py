"""Unit tests for statistics helpers."""

import pytest

from repro.analysis import (
    bootstrap_ci,
    coefficient_of_variation,
    geometric_mean,
    mean,
    relative_gap,
    stdev,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stdev(self):
        assert stdev([1.0, 1.0, 1.0]) == 0.0
        assert stdev([1.0, 3.0]) == pytest.approx(2.0**0.5)
        with pytest.raises(ValueError):
            stdev([1.0])

    def test_cv(self):
        assert coefficient_of_variation([10.0, 10.0]) == 0.0
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])


class TestRelativeGap:
    def test_paper_38_percent_claim_form(self):
        # credits p99 = 6.9ms, model p99 = 5.1ms -> within 38%.
        assert relative_gap(6.9, 5.1) <= 0.38

    def test_negative_when_better(self):
        assert relative_gap(0.9, 1.0) < 0

    def test_validates(self):
        with pytest.raises(ValueError):
            relative_gap(1.0, 0.0)


class TestGeometricMean:
    def test_speedups(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestBootstrap:
    def test_ci_contains_mean_for_tight_data(self):
        data = [10.0 + 0.01 * i for i in range(100)]
        lo, hi = bootstrap_ci(data, confidence=0.95, n_resamples=500)
        assert lo <= mean(data) <= hi
        assert hi - lo < 0.5

    def test_ci_wider_for_noisy_data(self):
        tight = [10.0 + 0.01 * i for i in range(50)]
        noisy = [10.0 + 5.0 * ((-1) ** i) for i in range(50)]
        lo_t, hi_t = bootstrap_ci(tight, n_resamples=300)
        lo_n, hi_n = bootstrap_ci(noisy, n_resamples=300)
        assert (hi_n - lo_n) > (hi_t - lo_t)

    def test_deterministic_given_seed(self):
        data = [float(i) for i in range(30)]
        assert bootstrap_ci(data, seed=5) == bootstrap_ci(data, seed=5)

    def test_validates(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=5)
