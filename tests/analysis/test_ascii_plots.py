"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis import bar_chart, cdf_sketch, grouped_bar_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        line_a, line_b = out.splitlines()
        assert line_b.count("#") > line_a.count("#")
        assert line_b.count("#") == 20

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_tiny_values_get_minimum_bar(self):
        out = bar_chart({"a": 1e-9, "b": 1.0})
        assert out.splitlines()[0].count("#") >= 1


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart(
            {
                "p50": {"c3": 4.0, "brb": 1.3},
                "p99": {"c3": 14.0, "brb": 7.0},
            }
        )
        assert "-- p50 --" in out and "-- p99 --" in out
        assert out.count("c3") == 2

    def test_global_scale_shared(self):
        out = grouped_bar_chart(
            {"g1": {"x": 1.0}, "g2": {"x": 2.0}}, width=30
        )
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[1].count("#") == 30
        assert lines[0].count("#") == 15

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestCdfSketch:
    def test_renders_grid(self):
        points = [(0.001 * (i + 1), (i + 1) / 10) for i in range(10)]
        out = cdf_sketch(points, rows=8, width=40)
        lines = out.splitlines()
        assert len(lines) == 8 + 2  # grid + axis + labels
        assert "*" in out

    def test_log_axis_labels(self):
        points = [(0.001, 0.5), (1.0, 1.0)]
        out = cdf_sketch(points)
        assert "10^" in out

    def test_linear_axis(self):
        points = [(1.0, 0.5), (2.0, 1.0)]
        out = cdf_sketch(points, log_x=False)
        assert "10^" not in out

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            cdf_sketch([(1.0, 1.0)])

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            cdf_sketch([(0.0, 0.5), (1.0, 1.0)], log_x=True)
