"""Mid-run rebalance: the fault window re-homes routing, sim end to end.

Covers the runtime half of the placement layer: strategies route around
decommissioned servers the moment a window opens (the eligible-replica
seam), scenario runs under rebalance conserve every task, and the audit
counters record what happened.
"""

from types import SimpleNamespace

import pytest

from repro.baselines.selectors import make_selector
from repro.baselines.strategies import ObliviousStrategy
from repro.cluster.faults import FaultSchedule, RebalanceFault
from repro.harness import ExperimentConfig, run_experiment
from repro.placement import MutablePlacement, RingPlacement
from repro.scenarios import get_scenario
from repro.sim.rng import Stream
from repro.workload.calibration import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def _task(task_id, keys):
    return Task(
        task_id=task_id,
        arrival_time=0.0,
        client_id=0,
        operations=tuple(
            Operation(op_id=task_id * 100 + i, task_id=task_id, key=key, value_size=100)
            for i, key in enumerate(keys)
        ),
    )


def _prepare(strategy, task):
    strategy.client = SimpleNamespace(client_id=0)
    return strategy.prepare(task)


class TestEligibleReplicaSeam:
    def test_prepare_only_addresses_current_replicas(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        strategy = ObliviousStrategy(
            placement,
            make_selector("round-robin", stream=Stream(1, "sel")),
            ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none"),
        )
        keys = list(range(40))
        for request in _prepare(strategy, _task(0, keys)):
            assert request.server_id in placement.replicas_of(request.partition)

    def test_prepare_routes_around_excluded_server(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        strategy = ObliviousStrategy(
            placement,
            make_selector("round-robin", stream=Stream(1, "sel")),
            ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none"),
        )
        keys = list(range(60))
        before = _prepare(strategy, _task(0, keys))
        assert any(r.server_id == 4 for r in before)  # 4 serves some keys
        placement.exclude([4])
        after = _prepare(strategy, _task(1, keys))
        assert all(r.server_id != 4 for r in after)
        placement.readmit([4])
        again = _prepare(strategy, _task(2, keys))
        assert any(r.server_id == 4 for r in again)


class TestRebalanceRuns:
    @pytest.mark.parametrize("strategy", ["oblivious-lor", "unifincr-credits"])
    def test_scenario_conserves_tasks_and_counts_windows(self, strategy):
        cfg = get_scenario("ring-rebalance").build_config(
            strategy=strategy, n_tasks=1800, n_keys=2000
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 1800
        assert result.extras["rebalance_windows"] >= 1
        assert result.extras["placement_swaps"] >= 1

    def test_permanent_decommission(self):
        cfg = ExperimentConfig(
            strategy="oblivious-lor",
            n_tasks=800,
            n_keys=2000,
            fault_schedule=FaultSchedule(
                (RebalanceFault(servers=(0, 1), start=0.0, duration=float("inf")),)
            ),
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 800
        assert result.extras["placement_swaps"] == 1.0

    def test_rebalance_fault_requires_mutable_placement(self):
        from repro.cluster.faults import FaultInjector
        from repro.sim.engine import Environment

        schedule = FaultSchedule((RebalanceFault(servers=(0,)),))
        with pytest.raises(ValueError, match="MutablePlacement"):
            FaultInjector(Environment(), schedule, servers=[object()] * 3)

    def test_infeasible_rebalance_rejected_before_the_run(self):
        """Draining 7 of 9 servers under RF=3 must fail at construction,
        not crash mid-window (code-review finding)."""
        cfg = ExperimentConfig(
            strategy="oblivious-lor",
            n_tasks=50,
            fault_schedule=FaultSchedule(
                (RebalanceFault(servers=tuple(range(7)), start=0.01),)
            ),
        )
        with pytest.raises(ValueError, match="infeasible.*replication_factor"):
            run_experiment(cfg, seed=1)

    def test_overlapping_same_server_rebalances_run_clean(self):
        """Two windows sharing server 2 compose via reference counting."""
        cfg = ExperimentConfig(
            strategy="oblivious-lor",
            n_tasks=1500,
            n_keys=2000,
            fault_schedule=FaultSchedule(
                (
                    RebalanceFault(servers=(2,), start=0.01, duration=0.3),
                    RebalanceFault(servers=(2, 3), start=0.05, duration=0.3),
                )
            ),
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 1500
        assert result.extras["rebalance_windows"] == 2.0

    def test_candidate_replicas_matches_routed_requests(self):
        """ClusterContext.candidate_replicas is the same eligible set the
        strategies route within (the seam's contract)."""
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        strategy = ObliviousStrategy(
            placement,
            make_selector("round-robin", stream=Stream(1, "sel")),
            ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none"),
        )
        ctx = SimpleNamespace(
            placement=placement,
            candidate_replicas=lambda key: placement.replicas_of_key(key),
        )
        from repro.harness.builders import ClusterContext

        candidate_replicas = ClusterContext.candidate_replicas
        for request in _prepare(strategy, _task(0, list(range(40)))):
            eligible = candidate_replicas(ctx, request.op.key)
            assert request.server_id in eligible
            assert eligible == placement.replicas_of(request.partition)

    def test_hot_shard_workload_concentrates_on_one_group(self):
        cfg = get_scenario("hot-shard").build_config(n_tasks=10)
        workload = cfg.workload()
        placement = cfg.cluster.make_placement()
        hot_group = set(placement.replicas_of(cfg.hot_shard))
        stream = Stream(7, "probe")
        hits = sum(
            1
            for _ in range(2000)
            if set(placement.replicas_of_key(workload.popularity.sample_key(stream)))
            == hot_group
        )
        # 40% directed draws, plus the base model's incidental hits on the
        # shard (~1/9 of base draws); uniform routing would give ~11%.
        assert hits / 2000 > 0.35


class TestBoost:
    """Replica spreading: the hot-shard remediation lever."""

    def test_boost_widens_the_replica_set(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        base = placement.replicas_of(0)
        extras = tuple(s for s in range(9) if s not in base)[:2]
        placement.boost(0, extras)
        widened = placement.replicas_of(0)
        assert set(widened) == set(base) | set(extras)
        # Other partitions are untouched.
        for p in range(1, placement.n_partitions):
            assert extras[0] not in placement.replicas_of(p) or extras[
                0
            ] in RingPlacement(9, replication_factor=3).replicas_of(p)

    def test_unboost_restores_the_base_set(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        base = placement.replicas_of(2)
        extra = next(s for s in range(9) if s not in base)
        placement.boost(2, (extra,))
        placement.unboost(2)
        assert placement.replicas_of(2) == base
        assert placement.boosted == {}

    def test_boost_and_unboost_bump_the_swap_counter(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        extra = next(s for s in range(9) if s not in placement.replicas_of(0))
        placement.boost(0, (extra,))
        swaps = placement.swaps
        placement.unboost(0)
        assert placement.swaps == swaps + 1

    def test_excluded_servers_drop_out_of_boosted_sets(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        base = placement.replicas_of(0)
        extras = tuple(s for s in range(9) if s not in base)[:2]
        placement.boost(0, extras)
        placement.exclude((extras[0],))
        replicas = placement.replicas_of(0)
        assert extras[0] not in replicas
        assert extras[1] in replicas
        placement.readmit((extras[0],))
        assert extras[0] in placement.replicas_of(0)

    def test_boost_validates_its_arguments(self):
        placement = MutablePlacement(RingPlacement(9, replication_factor=3))
        with pytest.raises(ValueError, match="out of range"):
            placement.boost(99, (1,))
        with pytest.raises(ValueError, match="out of range"):
            placement.boost(0, (42,))
        with pytest.raises(ValueError, match="at least one"):
            placement.boost(0, ())
        with pytest.raises(ValueError, match="not boosted"):
            placement.unboost(3)
