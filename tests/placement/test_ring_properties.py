"""Property-based tests (hypothesis) for the placement layer.

Invariants (ISSUE 4's placement contract):

* ring lookups are deterministic: the same constructor arguments yield
  the same key -> replica-set mapping in any process, and two
  independently built rings agree everywhere;
* every key resolves to exactly ``replication_factor`` *distinct*,
  in-range servers;
* membership changes move no more than they must: removing a server
  from a consistent-hash ring changes only the replica groups that
  contained it (minimal movement), so the moved key fraction equals the
  theoretical minimum and primary moves stay near ``K/N``.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.placement import (
    ConsistentHashRing,
    MutablePlacement,
    RingPlacement,
    placement_delta,
)

ring_params = st.tuples(
    st.integers(min_value=2, max_value=16),   # n_servers
    st.integers(min_value=1, max_value=16),   # replication_factor (clamped)
    st.integers(min_value=1, max_value=96),   # n_partitions
)


def _clamp(params):
    n_servers, rf, n_partitions = params
    return n_servers, min(rf, n_servers), n_partitions


@settings(max_examples=40, deadline=None)
@given(ring_params, st.integers(min_value=0, max_value=10_000))
def test_ring_lookup_deterministic_per_seed(params, key):
    n_servers, rf, n_partitions = _clamp(params)
    a = RingPlacement(n_servers, rf, n_partitions)
    b = RingPlacement(n_servers, rf, n_partitions)
    assert a.partition_of(key) == b.partition_of(key)
    assert a.replicas_of_key(key) == b.replicas_of_key(key)


@settings(max_examples=25, deadline=None)
@given(ring_params, st.integers(min_value=1, max_value=8))
def test_chash_lookup_deterministic_per_seed(params, vnodes):
    n_servers, rf, n_partitions = _clamp(params)
    a = ConsistentHashRing(n_servers, rf, n_partitions, vnodes=vnodes)
    b = ConsistentHashRing(n_servers, rf, n_partitions, vnodes=vnodes)
    for p in range(n_partitions):
        assert a.replicas_of(p) == b.replicas_of(p)
    for key in range(0, 500, 7):
        assert a.partition_of(key) == b.partition_of(key)


@settings(max_examples=40, deadline=None)
@given(ring_params, st.sampled_from(["ring", "chash"]))
def test_every_key_gets_rf_distinct_servers(params, kind):
    n_servers, rf, n_partitions = _clamp(params)
    placement = (
        RingPlacement(n_servers, rf, n_partitions)
        if kind == "ring"
        else ConsistentHashRing(n_servers, rf, n_partitions, vnodes=4)
    )
    placement.validate()
    for key in range(0, 400, 13):
        replicas = placement.replicas_of_key(key)
        assert len(replicas) == rf
        assert len(set(replicas)) == rf
        assert all(0 <= s < n_servers for s in replicas)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=3, max_value=12),   # n_servers
    st.integers(min_value=1, max_value=3),    # replication_factor
    st.integers(min_value=8, max_value=64),   # n_partitions
    st.integers(min_value=2, max_value=8),    # vnodes
    st.integers(min_value=0, max_value=11),   # server to remove (mod n)
)
def test_chash_rebalance_moves_only_affected_groups(
    n_servers, rf, n_partitions, vnodes, removed
):
    removed %= n_servers
    rf = min(rf, n_servers - 1)
    ring = ConsistentHashRing(n_servers, rf, n_partitions, vnodes=vnodes)
    shrunk = ring.without_servers([removed])
    for p in range(n_partitions):
        before = ring.replicas_of(p)
        after = shrunk.replicas_of(p)
        assert removed not in after
        if removed not in before:
            # Minimal movement: untouched groups are *identical*, order
            # included (the clockwise walk is unchanged).
            assert after == before
        else:
            # The departed server is replaced; the survivors stay.
            assert set(before) - {removed} <= set(after)
            assert len(after) == rf


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=0, max_value=9),
)
def test_rebalance_delta_within_theoretical_minimum(n_servers, removed):
    removed %= n_servers
    ring = ConsistentHashRing(
        n_servers, replication_factor=3, n_partitions=64, vnodes=16
    )
    shrunk = ring.without_servers([removed])
    delta = placement_delta(ring, shrunk, n_keys=2000)
    # Consistent hashing moves exactly the keys the departed server held,
    # never more (<= covers degenerate zero-ownership draws).
    assert delta.moved_fraction <= delta.affected_fraction
    assert delta.moved_keys <= delta.affected_keys
    # Primary moves ~ K/N: only keys whose primary was the departed
    # server re-home their primary.  Vnode imbalance bounds the excess.
    assert delta.primary_moved_fraction <= 3.0 / n_servers


def test_ring_placement_successor_fallthrough_is_minimal():
    ring = RingPlacement(n_servers=9, replication_factor=3)
    shrunk = ring.without_servers([4])
    for p in range(ring.n_partitions):
        before = ring.replicas_of(p)
        after = shrunk.replicas_of(p)
        assert 4 not in after
        if 4 not in before:
            assert after == before


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=12),
    st.sets(st.integers(min_value=0, max_value=11), min_size=1, max_size=2),
)
def test_mutable_placement_exclude_readmit_roundtrip(n_servers, excluded):
    excluded = {s % n_servers for s in excluded}
    if len(excluded) > n_servers - 2:
        excluded = set(list(excluded)[: n_servers - 2])
    ring = ConsistentHashRing(
        n_servers, replication_factor=2, n_partitions=32, vnodes=4
    )
    mutable = MutablePlacement(ring)
    base_groups = [mutable.replicas_of(p) for p in range(ring.n_partitions)]
    mutable.exclude(excluded)
    for p in range(ring.n_partitions):
        assert not (set(mutable.replicas_of(p)) & excluded)
    mutable.validate()
    mutable.readmit(excluded)
    assert [
        mutable.replicas_of(p) for p in range(ring.n_partitions)
    ] == base_groups
    assert mutable.excluded == ()
    assert mutable.swaps == 2


def test_overlapping_exclusions_are_reference_counted():
    """Two windows sharing a server nest: the first revert keeps the
    shared server out, the second brings it back (overlap composes)."""
    mutable = MutablePlacement(
        RingPlacement(n_servers=9, replication_factor=3)
    )
    mutable.exclude([2])          # window A opens
    mutable.exclude([2, 5])       # overlapping window B opens
    assert mutable.excluded == (2, 5)
    mutable.readmit([2])          # window A closes; B still holds 2
    assert mutable.excluded == (2, 5)
    mutable.readmit([2, 5])       # window B closes
    assert mutable.excluded == ()
    assert mutable.active is mutable.base


def test_mutable_placement_rejects_bad_readmit_and_over_exclusion():
    mutable = MutablePlacement(RingPlacement(n_servers=4, replication_factor=2))
    mutable.exclude([1])
    with pytest.raises(ValueError, match="not excluded"):
        mutable.readmit([3])
    with pytest.raises(ValueError, match="replication_factor"):
        mutable.exclude([0, 2])  # would leave 1 < RF=2 live servers
    # The failed exclusion must not have corrupted state.
    assert mutable.excluded == (1,)
    mutable.readmit([1])
    assert mutable.excluded == ()


def test_degenerate_full_replication_ring_offers_every_server():
    """RF == N: every key's eligible set is the whole cluster -- the
    pre-placement 'any server holds any key' model, recovered exactly."""
    for placement in (
        RingPlacement(n_servers=9, replication_factor=9),
        ConsistentHashRing(n_servers=9, replication_factor=9, n_partitions=16),
    ):
        placement.validate()
        for key in range(50):
            assert sorted(placement.replicas_of_key(key)) == list(range(9))
