"""Property-based round-trip test for trace serialization."""

from hypothesis import given, settings, strategies as st

from repro.workload import load_trace, save_trace
from repro.workload.tasks import Operation, Task


@st.composite
def tasks_strategy(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    tasks = []
    op_counter = 0
    clock = 0.0
    for task_id in range(n_tasks):
        clock += draw(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
        )
        n_ops = draw(st.integers(min_value=1, max_value=8))
        ops = []
        for _ in range(n_ops):
            ops.append(
                Operation(
                    op_id=op_counter,
                    task_id=task_id,
                    key=draw(st.integers(min_value=0, max_value=10**9)),
                    value_size=draw(st.integers(min_value=1, max_value=2**20)),
                )
            )
            op_counter += 1
        tasks.append(
            Task(
                task_id=task_id,
                arrival_time=clock,
                client_id=draw(st.integers(min_value=0, max_value=63)),
                operations=tuple(ops),
            )
        )
    return tasks


@given(tasks_strategy())
@settings(max_examples=50, deadline=None)
def test_roundtrip_preserves_everything(tmp_path_factory, tasks):
    path = tmp_path_factory.mktemp("traces") / "t.jsonl"
    save_trace(path, tasks, metadata={"n": len(tasks)})
    loaded, metadata = load_trace(path)
    assert metadata == {"n": len(tasks)}
    assert len(loaded) == len(tasks)
    for orig, back in zip(tasks, loaded):
        assert back.task_id == orig.task_id
        assert back.client_id == orig.client_id
        assert back.arrival_time == orig.arrival_time
        assert back.operations == orig.operations
