"""Unit tests for fan-out distributions."""

import pytest

from repro.sim import Stream
from repro.workload import (
    FixedFanout,
    GeometricFanout,
    LogNormalFanout,
    MixtureFanout,
    UniformFanout,
    calibrated_lognormal,
    empirical_mean,
)
from repro.workload.soundcloud import soundcloud_fanout


class TestFixed:
    def test_constant(self):
        dist = FixedFanout(5)
        assert dist.sample(Stream(1)) == 5
        assert dist.mean() == 5.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedFanout(0)


class TestUniform:
    def test_bounds_and_mean(self):
        dist = UniformFanout(2, 10)
        stream = Stream(2)
        draws = [dist.sample(stream) for _ in range(2000)]
        assert min(draws) >= 2 and max(draws) <= 10
        assert sum(draws) / len(draws) == pytest.approx(6.0, rel=0.05)


class TestGeometric:
    def test_mean_calibration(self):
        dist = GeometricFanout(8.6)
        m = empirical_mean(dist, Stream(3), n=100_000)
        assert m == pytest.approx(8.6, rel=0.03)

    def test_minimum_is_one(self):
        dist = GeometricFanout(1.5)
        stream = Stream(4)
        assert all(dist.sample(stream) >= 1 for _ in range(5000))

    def test_rejects_mean_below_one(self):
        with pytest.raises(ValueError):
            GeometricFanout(1.0)


class TestLogNormal:
    def test_cap_respected(self):
        dist = LogNormalFanout(8.6, sigma=1.5, cap=64)
        stream = Stream(5)
        assert all(1 <= dist.sample(stream) <= 64 for _ in range(5000))

    def test_heavy_tail(self):
        """With sigma=1 a non-negligible share of tasks exceed 3x the mean."""
        dist = LogNormalFanout(8.6, sigma=1.0, cap=1024)
        stream = Stream(6)
        draws = [dist.sample(stream) for _ in range(20_000)]
        big = sum(1 for d in draws if d > 26)
        assert 0.005 < big / len(draws) < 0.2

    def test_calibrated_lognormal_hits_target(self):
        dist = calibrated_lognormal(8.6, sigma=1.0)
        m = empirical_mean(dist, Stream(7), n=50_000)
        assert m == pytest.approx(8.6, rel=0.05)

    def test_validates(self):
        with pytest.raises(ValueError):
            LogNormalFanout(0.5)
        with pytest.raises(ValueError):
            LogNormalFanout(5.0, sigma=0.0)
        with pytest.raises(ValueError):
            LogNormalFanout(5.0, cap=1)


class TestMixture:
    def test_weights_normalized(self):
        dist = MixtureFanout([(2.0, FixedFanout(1)), (2.0, FixedFanout(3))])
        assert dist.mean() == pytest.approx(2.0)

    def test_sampling_mixes(self):
        dist = MixtureFanout([(0.5, FixedFanout(1)), (0.5, FixedFanout(100))])
        stream = Stream(8)
        draws = {dist.sample(stream) for _ in range(200)}
        assert draws == {1, 100}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MixtureFanout([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureFanout([(0.0, FixedFanout(1))])


class TestSoundCloudFanout:
    def test_mean_is_paper_value(self):
        dist = soundcloud_fanout()
        m = empirical_mean(dist, Stream(9), n=100_000)
        assert m == pytest.approx(8.6, rel=0.05)

    def test_pure_geometric_when_no_playlists(self):
        dist = soundcloud_fanout(playlist_fraction=0.0)
        assert isinstance(dist, GeometricFanout)

    def test_heavy_tail_from_playlists(self):
        dist = soundcloud_fanout(playlist_fraction=0.25)
        stream = Stream(10)
        draws = [dist.sample(stream) for _ in range(50_000)]
        assert max(draws) > 50  # playlist expansions reach large fan-outs

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            soundcloud_fanout(mean=1.0)
