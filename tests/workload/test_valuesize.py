"""Unit + property tests for value-size distributions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Stream
from repro.workload import (
    BoundedParetoValueSize,
    FixedValueSize,
    GeneralizedParetoValueSize,
    UniformValueSize,
    atikoglu_etc,
)


class TestFixed:
    def test_sample_constant(self):
        dist = FixedValueSize(100)
        stream = Stream(1)
        assert all(dist.sample(stream) == 100 for _ in range(10))
        assert dist.mean() == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedValueSize(0)


class TestUniform:
    def test_bounds(self):
        dist = UniformValueSize(10, 20)
        stream = Stream(2)
        draws = [dist.sample(stream) for _ in range(1000)]
        assert min(draws) >= 10 and max(draws) <= 20
        assert dist.mean() == 15.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            UniformValueSize(20, 10)


class TestGeneralizedPareto:
    def test_bounds_respected(self):
        dist = GeneralizedParetoValueSize(min_size=16, max_size=4096)
        stream = Stream(3)
        draws = [dist.sample(stream) for _ in range(5000)]
        assert min(draws) >= 16 and max(draws) <= 4096

    def test_empirical_mean_matches_analytic(self):
        dist = atikoglu_etc()
        stream = Stream(4)
        n = 100_000
        empirical = sum(dist.sample(stream) for _ in range(n)) / n
        assert empirical == pytest.approx(dist.mean(), rel=0.05)

    def test_mean_is_cached(self):
        dist = atikoglu_etc()
        m1 = dist.mean()
        assert dist.mean() == m1  # second call hits the cache

    def test_skewed_right(self):
        """Most values are small; the mean sits far above the median."""
        dist = atikoglu_etc()
        stream = Stream(5)
        draws = sorted(dist.sample(stream) for _ in range(20_000))
        median = draws[len(draws) // 2]
        assert dist.mean() > 1.5 * median

    def test_validates(self):
        with pytest.raises(ValueError):
            GeneralizedParetoValueSize(scale=-1.0)
        with pytest.raises(ValueError):
            GeneralizedParetoValueSize(min_size=100, max_size=100)


class TestBoundedPareto:
    def test_bounds(self):
        dist = BoundedParetoValueSize(alpha=1.2, lo=64, hi=1024)
        stream = Stream(6)
        draws = [dist.sample(stream) for _ in range(5000)]
        assert min(draws) >= 64 and max(draws) <= 1024

    def test_mean_formula(self):
        dist = BoundedParetoValueSize(alpha=1.5, lo=100, hi=100_000)
        stream = Stream(7)
        n = 200_000
        empirical = sum(dist.sample(stream) for _ in range(n)) / n
        assert empirical == pytest.approx(dist.mean(), rel=0.05)

    def test_alpha_one_special_case(self):
        dist = BoundedParetoValueSize(alpha=1.0, lo=10, hi=1000)
        assert dist.mean() > 10

    def test_heavier_tail_with_smaller_alpha(self):
        light = BoundedParetoValueSize(alpha=2.0, lo=64, hi=1_000_000)
        heavy = BoundedParetoValueSize(alpha=1.1, lo=64, hi=1_000_000)
        assert heavy.mean() > light.mean()

    def test_validates(self):
        with pytest.raises(ValueError):
            BoundedParetoValueSize(alpha=0.0)
        with pytest.raises(ValueError):
            BoundedParetoValueSize(lo=100, hi=10)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50, deadline=None)
def test_gp_samples_always_positive_ints(seed):
    dist = atikoglu_etc()
    stream = Stream(seed)
    for _ in range(20):
        v = dist.sample(stream)
        assert isinstance(v, int)
        assert 1 <= v <= 1_048_576
