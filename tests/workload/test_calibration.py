"""Unit tests for the service-time model and capacity calibration."""

import pytest

from repro.sim import Stream
from repro.workload import (
    ServiceTimeModel,
    atikoglu_etc,
    calibrate_service_model,
    empirical_service_rate,
    system_capacity,
    task_arrival_rate_for_load,
)


class TestServiceTimeModel:
    def test_expected_time_linear_in_size(self):
        model = ServiceTimeModel(overhead=1e-4, bandwidth=1e6, noise="none")
        assert model.expected_time(1000) == pytest.approx(1e-4 + 1e-3)
        assert model.expected_time(2000) > model.expected_time(1000)

    def test_sample_deterministic_without_noise(self):
        model = ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none")
        stream = Stream(1)
        assert model.sample_time(500, stream) == model.expected_time(500)

    def test_exponential_noise_preserves_mean(self):
        model = ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="exponential")
        stream = Stream(2)
        n = 50_000
        mean = sum(model.sample_time(1000, stream) for _ in range(n)) / n
        assert mean == pytest.approx(model.expected_time(1000), rel=0.03)

    def test_lognormal_noise_preserves_mean(self):
        model = ServiceTimeModel(
            overhead=0.0, bandwidth=1e6, noise="lognormal", noise_sigma=0.7
        )
        stream = Stream(3)
        n = 100_000
        mean = sum(model.sample_time(1000, stream) for _ in range(n)) / n
        assert mean == pytest.approx(model.expected_time(1000), rel=0.03)

    def test_validates(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(overhead=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            ServiceTimeModel(overhead=0.0, bandwidth=0.0)
        with pytest.raises(ValueError):
            ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="weird")
        model = ServiceTimeModel(overhead=0.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            model.expected_time(0)


class TestCalibration:
    def test_calibrated_rate_hits_target(self):
        """The paper's 3500 req/s/core must emerge from the size mix."""
        sizes = atikoglu_etc()
        model = calibrate_service_model(sizes, target_rate=3500.0, noise="none")
        rate = empirical_service_rate(model, sizes, n=50_000)
        assert rate == pytest.approx(3500.0, rel=0.03)

    def test_calibrated_rate_with_noise(self):
        sizes = atikoglu_etc()
        model = calibrate_service_model(sizes, target_rate=3500.0, noise="exponential")
        rate = empirical_service_rate(model, sizes, n=100_000)
        assert rate == pytest.approx(3500.0, rel=0.05)

    def test_overhead_fraction(self):
        sizes = atikoglu_etc()
        model = calibrate_service_model(sizes, target_rate=1000.0, overhead_fraction=0.5)
        assert model.overhead == pytest.approx(0.5e-3)
        assert model.mean_time(sizes.mean()) == pytest.approx(1e-3)

    def test_validates(self):
        sizes = atikoglu_etc()
        with pytest.raises(ValueError):
            calibrate_service_model(sizes, target_rate=0.0)
        with pytest.raises(ValueError):
            calibrate_service_model(sizes, overhead_fraction=1.0)


class TestCapacityArithmetic:
    def test_system_capacity(self):
        assert system_capacity(9, 4, 3500.0) == pytest.approx(126_000.0)

    def test_task_rate_for_load(self):
        """Paper setup: 70% of 126k req/s over fan-out 8.6."""
        rate = task_arrival_rate_for_load(0.7, 9, 4, 3500.0, 8.6)
        assert rate == pytest.approx(0.7 * 126_000.0 / 8.6)

    def test_validates(self):
        with pytest.raises(ValueError):
            system_capacity(0, 4, 3500.0)
        with pytest.raises(ValueError):
            task_arrival_rate_for_load(0.0, 9, 4, 3500.0, 8.6)
        with pytest.raises(ValueError):
            task_arrival_rate_for_load(0.7, 9, 4, 3500.0, 0.5)
