"""Unit tests for the SoundCloud-like workload assembly."""

import pytest

from repro.workload import (
    PAPER_LOAD,
    PAPER_MEAN_FANOUT,
    make_soundcloud_workload,
    trace_stats,
)
from repro.workload.soundcloud import parse_value_size_model
from repro.workload.valuesize import BoundedParetoValueSize, GeneralizedParetoValueSize


class TestDefaults:
    def test_paper_constants(self):
        assert PAPER_MEAN_FANOUT == 8.6
        assert PAPER_LOAD == 0.70

    def test_task_rate_is_seventy_percent_of_capacity(self):
        w = make_soundcloud_workload()
        capacity_requests = 9 * 4 * 3500.0
        expected = 0.7 * capacity_requests / w.fanout.mean()
        assert w.task_rate == pytest.approx(expected)

    def test_generated_trace_matches_disclosed_stats(self):
        w = make_soundcloud_workload(n_tasks=5000)
        stats = trace_stats(w.generate(seed=1))
        assert stats["mean_fanout"] == pytest.approx(8.6, rel=0.1)
        assert stats["task_rate"] == pytest.approx(w.task_rate, rel=0.1)

    def test_same_seed_same_trace(self):
        w = make_soundcloud_workload(n_tasks=100)
        t1 = w.generate(seed=9)
        t2 = w.generate(seed=9)
        assert [t.keys() for t in t1] == [t.keys() for t in t2]

    def test_different_seeds_differ(self):
        w = make_soundcloud_workload(n_tasks=100)
        assert [t.keys() for t in w.generate(seed=1)] != [
            t.keys() for t in w.generate(seed=2)
        ]

    def test_service_model_calibrated(self):
        w = make_soundcloud_workload()
        assert w.service_model.service_rate(w.value_sizes.mean()) == pytest.approx(
            3500.0, rel=1e-6
        )

    def test_rejects_bad_task_count(self):
        with pytest.raises(ValueError):
            make_soundcloud_workload(n_tasks=0)


class TestValueSizeModelParsing:
    def test_atikoglu(self):
        assert isinstance(parse_value_size_model("atikoglu"), GeneralizedParetoValueSize)

    def test_pareto(self):
        dist = parse_value_size_model("pareto:1.2")
        assert isinstance(dist, BoundedParetoValueSize)
        assert dist.alpha == 1.2

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            parse_value_size_model("pareto:abc")
        with pytest.raises(ValueError):
            parse_value_size_model("zipf")
