"""Unit tests for key-popularity models."""

import pytest

from repro.sim import Stream
from repro.workload import HotColdPopularity, UniformPopularity, ZipfPopularity


class TestUniform:
    def test_range(self):
        pop = UniformPopularity(100)
        stream = Stream(1)
        assert all(0 <= pop.sample_key(stream) < 100 for _ in range(2000))

    def test_roughly_flat(self):
        pop = UniformPopularity(10)
        stream = Stream(2)
        counts = [0] * 10
        for _ in range(20_000):
            counts[pop.sample_key(stream)] += 1
        assert max(counts) / min(counts) < 1.3

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ValueError):
            UniformPopularity(0)


class TestZipf:
    def test_range(self):
        pop = ZipfPopularity(1000, skew=0.9)
        stream = Stream(3)
        assert all(0 <= pop.sample_key(stream) < 1000 for _ in range(2000))

    def test_skew_concentrates_traffic(self):
        pop = ZipfPopularity(10_000, skew=0.99)
        stream = Stream(4)
        counts = {}
        n = 50_000
        for _ in range(n):
            k = pop.sample_key(stream)
            counts[k] = counts.get(k, 0) + 1
        top = sorted(counts.values(), reverse=True)[:100]
        assert sum(top) / n > 0.2  # top 1% of keys >> 1% of traffic

    def test_permutation_decouples_rank_from_id(self):
        """The hottest key must (almost surely) not be key 0."""
        pop = ZipfPopularity(100_000, skew=1.2, perm_seed=5)
        stream = Stream(5)
        counts = {}
        for _ in range(20_000):
            k = pop.sample_key(stream)
            counts[k] = counts.get(k, 0) + 1
        hottest = max(counts, key=counts.get)
        assert hottest != 0

    def test_deterministic_permutation(self):
        a = ZipfPopularity(100, skew=0.9, perm_seed=7)
        b = ZipfPopularity(100, skew=0.9, perm_seed=7)
        sa, sb = Stream(6), Stream(6)
        assert [a.sample_key(sa) for _ in range(50)] == [
            b.sample_key(sb) for _ in range(50)
        ]


class TestHotCold:
    def test_hot_keys_get_hot_weight(self):
        pop = HotColdPopularity(1000, hot_fraction=0.1, hot_weight=0.9, perm_seed=1)
        stream = Stream(7)
        n = 50_000
        counts = {}
        for _ in range(n):
            k = pop.sample_key(stream)
            counts[k] = counts.get(k, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])
        hot_traffic = sum(c for _, c in ranked[:100])
        assert hot_traffic / n == pytest.approx(0.9, abs=0.05)

    def test_validates(self):
        with pytest.raises(ValueError):
            HotColdPopularity(1)
        with pytest.raises(ValueError):
            HotColdPopularity(100, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdPopularity(100, hot_weight=1.0)


class TestSampleDistinct:
    def test_distinct_keys(self):
        pop = ZipfPopularity(50, skew=1.5)
        stream = Stream(8)
        for _ in range(100):
            keys = pop.sample_distinct(stream, 10)
            assert len(keys) == len(set(keys)) == 10

    def test_exhausts_small_keyspace(self):
        pop = ZipfPopularity(5, skew=2.0)
        stream = Stream(9)
        keys = pop.sample_distinct(stream, 5)
        assert sorted(keys) == [0, 1, 2, 3, 4]

    def test_too_many_rejected(self):
        pop = UniformPopularity(3)
        with pytest.raises(ValueError):
            pop.sample_distinct(Stream(10), 4)
