"""Unit tests for arrival processes."""

import pytest

from repro.sim import Stream
from repro.workload import (
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    arrival_times,
)


class TestPoisson:
    def test_mean_rate(self):
        proc = PoissonArrivals(rate=100.0)
        stream = Stream(1)
        n = 50_000
        total = sum(proc.next_interarrival(stream) for _ in range(n))
        assert n / total == pytest.approx(100.0, rel=0.03)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_interarrivals_memoryless_cv(self):
        """Exponential gaps have coefficient of variation ~ 1."""
        proc = PoissonArrivals(rate=10.0)
        stream = Stream(2)
        gaps = [proc.next_interarrival(stream) for _ in range(20_000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = var**0.5 / mean
        assert cv == pytest.approx(1.0, rel=0.05)


class TestDeterministic:
    def test_fixed_period(self):
        proc = DeterministicArrivals(rate=4.0)
        stream = Stream(3)
        assert proc.next_interarrival(stream) == 0.25
        assert proc.next_interarrival(stream) == 0.25


class TestBursty:
    def test_long_run_rate_matches_base(self):
        proc = BurstyArrivals(base_rate=100.0, burst_multiplier=4.0, burst_fraction=0.2)
        stream = Stream(4)
        n = 100_000
        total = sum(proc.next_interarrival(stream) for _ in range(n))
        assert n / total == pytest.approx(100.0, rel=0.10)

    def test_burstier_than_poisson(self):
        """Gap CV must exceed 1 (the Poisson benchmark)."""
        proc = BurstyArrivals(base_rate=100.0, burst_multiplier=8.0, burst_fraction=0.1)
        stream = Stream(5)
        gaps = [proc.next_interarrival(stream) for _ in range(50_000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        assert var**0.5 / mean > 1.05

    def test_validates(self):
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=1.0, burst_multiplier=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(base_rate=1.0, burst_fraction=1.5)


class TestArrivalTimes:
    def test_monotone_increasing(self):
        times = arrival_times(PoissonArrivals(50.0), Stream(6), 1000)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_count_and_start(self):
        times = arrival_times(DeterministicArrivals(1.0), Stream(7), 3, start=10.0)
        assert times == [11.0, 12.0, 13.0]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(PoissonArrivals(1.0), Stream(8), -1)
