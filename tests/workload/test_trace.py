"""Unit tests for trace serialization (save/load round trip, errors)."""

import json

import pytest

from repro.workload import (
    TraceFormatError,
    load_trace,
    make_soundcloud_workload,
    save_trace,
)


@pytest.fixture
def small_trace():
    workload = make_soundcloud_workload(n_tasks=50, n_keys=500)
    return workload.generate(seed=3)


class TestRoundTrip:
    def test_tasks_survive_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, small_trace, metadata={"seed": 3})
        loaded, meta = load_trace(path)
        assert meta == {"seed": 3}
        assert len(loaded) == len(small_trace)
        for orig, back in zip(small_trace, loaded):
            assert back.task_id == orig.task_id
            assert back.arrival_time == orig.arrival_time
            assert back.client_id == orig.client_id
            assert [
                (op.op_id, op.key, op.value_size) for op in back.operations
            ] == [(op.op_id, op.key, op.value_size) for op in orig.operations]

    def test_empty_metadata_default(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, small_trace)
        _, meta = load_trace(path)
        assert meta == {}


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_trace(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError, match="not a repro trace"):
            load_trace(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "vnext.jsonl"
        path.write_text(json.dumps({"format": "repro-trace", "version": 999}) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_corrupt_task_record(self, small_trace, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        lines[1] = '{"task_id": "oops"}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="bad task record"):
            load_trace(path)

    def test_count_mismatch(self, small_trace, tmp_path):
        path = tmp_path / "short.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last task
        with pytest.raises(TraceFormatError, match="declares"):
            load_trace(path)
