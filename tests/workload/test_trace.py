"""Unit tests for trace serialization (save/load round trip, errors)."""

import json

import pytest

from repro.workload import (
    TraceFormatError,
    load_trace,
    make_soundcloud_workload,
    save_trace,
)


@pytest.fixture
def small_trace():
    workload = make_soundcloud_workload(n_tasks=50, n_keys=500)
    return workload.generate(seed=3)


class TestRoundTrip:
    def test_tasks_survive_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, small_trace, metadata={"seed": 3})
        loaded, meta = load_trace(path)
        assert meta == {"seed": 3}
        assert len(loaded) == len(small_trace)
        for orig, back in zip(small_trace, loaded):
            assert back.task_id == orig.task_id
            assert back.arrival_time == orig.arrival_time
            assert back.client_id == orig.client_id
            assert [
                (op.op_id, op.key, op.value_size) for op in back.operations
            ] == [(op.op_id, op.key, op.value_size) for op in orig.operations]

    def test_empty_metadata_default(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, small_trace)
        _, meta = load_trace(path)
        assert meta == {}

    def test_all_task_fields_and_op_linkage_survive(self, small_trace, tmp_path):
        """Every Task field -- including the op->task back-references and
        per-op fan-out structure -- must survive a round trip."""
        path = tmp_path / "trace.jsonl"
        save_trace(path, small_trace)
        loaded, _ = load_trace(path)
        for orig, back in zip(small_trace, loaded):
            assert back.fanout == orig.fanout
            assert isinstance(back.operations, tuple)
            for op in back.operations:
                assert op.task_id == back.task_id
            assert [op.op_id for op in back.operations] == [
                op.op_id for op in orig.operations
            ]

    def test_nested_metadata_survives(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        metadata = {"seed": 7, "workload": {"load": 0.7, "fanout": 8.6}}
        save_trace(path, small_trace, metadata=metadata)
        _, meta = load_trace(path)
        assert meta == metadata


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_trace(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError, match="not a repro trace"):
            load_trace(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "vnext.jsonl"
        path.write_text(json.dumps({"format": "repro-trace", "version": 999}) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_corrupt_task_record(self, small_trace, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        lines[1] = '{"task_id": "oops"}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="bad task record"):
            load_trace(path)

    def test_count_mismatch(self, small_trace, tmp_path):
        path = tmp_path / "short.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last task
        with pytest.raises(TraceFormatError, match="declares"):
            load_trace(path)

    def test_truncated_mid_record(self, small_trace, tmp_path):
        """A write cut off mid-task-record (half a JSON object) must fail
        as a format error, not leak a JSONDecodeError."""
        path = tmp_path / "cut.jsonl"
        save_trace(path, small_trace)
        content = path.read_text()
        path.write_text(content[: len(content) - len(content.splitlines()[-1]) // 2 - 1])
        with pytest.raises(TraceFormatError, match="bad task record|declares"):
            load_trace(path)

    def test_missing_task_field(self, small_trace, tmp_path):
        path = tmp_path / "missing.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["arrival_time"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="bad task record"):
            load_trace(path)

    def test_malformed_op_arity(self, small_trace, tmp_path):
        path = tmp_path / "ops.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["ops"] = [[1, 2]]  # op records are [op_id, key, value_size]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="bad task record"):
            load_trace(path)

    def test_error_message_names_file_and_line(self, small_trace, tmp_path):
        path = tmp_path / "loc.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        lines[3] = "{broken"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match=r"loc\.jsonl:4"):
            load_trace(path)

    def test_missing_version_field(self, small_trace, tmp_path):
        path = tmp_path / "nover.jsonl"
        save_trace(path, small_trace)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["version"]
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)
