"""Unit tests for tasks, the value-size registry and the generator."""

import pytest

from repro.sim import StreamFactory
from repro.workload import (
    FixedFanout,
    FixedValueSize,
    Operation,
    PoissonArrivals,
    Task,
    TaskGenerator,
    UniformPopularity,
    ValueSizeRegistry,
    atikoglu_etc,
    trace_stats,
)


def make_generator(seed=1, fanout=4, n_keys=1000, n_clients=3, rate=100.0):
    streams = StreamFactory(seed)
    return TaskGenerator(
        fanout=FixedFanout(fanout),
        popularity=UniformPopularity(n_keys),
        value_sizes=ValueSizeRegistry(atikoglu_etc(), seed=seed),
        arrivals=PoissonArrivals(rate),
        n_clients=n_clients,
        streams=streams,
    )


class TestDataModel:
    def test_operation_validates_size(self):
        with pytest.raises(ValueError):
            Operation(op_id=0, task_id=0, key=1, value_size=0)

    def test_task_requires_operations(self):
        with pytest.raises(ValueError):
            Task(task_id=0, arrival_time=0.0, client_id=0, operations=())

    def test_task_rejects_negative_arrival(self):
        op = Operation(op_id=0, task_id=0, key=1, value_size=10)
        with pytest.raises(ValueError):
            Task(task_id=0, arrival_time=-1.0, client_id=0, operations=(op,))

    def test_task_aggregates(self):
        ops = tuple(
            Operation(op_id=i, task_id=0, key=i, value_size=100) for i in range(4)
        )
        task = Task(task_id=0, arrival_time=1.0, client_id=0, operations=ops)
        assert task.fanout == 4
        assert task.total_bytes == 400
        assert task.keys() == [0, 1, 2, 3]


class TestValueSizeRegistry:
    def test_consistent_per_key(self):
        reg = ValueSizeRegistry(atikoglu_etc(), seed=42)
        assert reg.size_of(7) == reg.size_of(7)

    def test_deterministic_across_instances(self):
        a = ValueSizeRegistry(atikoglu_etc(), seed=42)
        b = ValueSizeRegistry(atikoglu_etc(), seed=42)
        assert [a.size_of(k) for k in range(100)] == [b.size_of(k) for k in range(100)]

    def test_different_seeds_differ(self):
        a = ValueSizeRegistry(atikoglu_etc(), seed=1)
        b = ValueSizeRegistry(atikoglu_etc(), seed=2)
        assert [a.size_of(k) for k in range(50)] != [b.size_of(k) for k in range(50)]

    def test_len_counts_distinct_keys(self):
        reg = ValueSizeRegistry(FixedValueSize(10), seed=1)
        reg.size_of(1)
        reg.size_of(1)
        reg.size_of(2)
        assert len(reg) == 2


class TestTaskGenerator:
    def test_ids_unique_and_sequential(self):
        gen = make_generator()
        tasks = gen.generate(10)
        assert [t.task_id for t in tasks] == list(range(10))
        op_ids = [op.op_id for t in tasks for op in t.operations]
        assert op_ids == list(range(len(op_ids)))

    def test_arrivals_increase(self):
        tasks = make_generator().generate(100)
        times = [t.arrival_time for t in tasks]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_clients_in_range(self):
        tasks = make_generator(n_clients=3).generate(200)
        assert {t.client_id for t in tasks} <= {0, 1, 2}

    def test_keys_distinct_within_task(self):
        tasks = make_generator(fanout=8).generate(100)
        for t in tasks:
            assert len(set(t.keys())) == t.fanout

    def test_deterministic_given_seed(self):
        t1 = make_generator(seed=5).generate(20)
        t2 = make_generator(seed=5).generate(20)
        assert [t.keys() for t in t1] == [t.keys() for t in t2]
        assert [t.arrival_time for t in t1] == [t.arrival_time for t in t2]

    def test_fanout_capped_by_keyspace(self):
        gen = make_generator(fanout=100, n_keys=10)
        task = gen.next_task()
        assert task.fanout == 10

    def test_value_sizes_consistent_across_tasks(self):
        gen = make_generator(n_keys=5, fanout=5)
        t1, t2 = gen.generate(2)
        sizes1 = {op.key: op.value_size for op in t1.operations}
        sizes2 = {op.key: op.value_size for op in t2.operations}
        for key in set(sizes1) & set(sizes2):
            assert sizes1[key] == sizes2[key]


class TestTraceStats:
    def test_stats_shape(self):
        tasks = make_generator(fanout=4, rate=100.0).generate(200)
        stats = trace_stats(tasks)
        assert stats["n_tasks"] == 200
        assert stats["mean_fanout"] == pytest.approx(4.0)
        assert stats["task_rate"] == pytest.approx(100.0, rel=0.3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])
