"""Unit tests for tasks, the value-size registry and the generator."""

import pytest

from repro.sim import StreamFactory
from repro.workload import (
    FixedFanout,
    FixedValueSize,
    Operation,
    PoissonArrivals,
    Task,
    TaskGenerator,
    UniformPopularity,
    ValueSizeRegistry,
    atikoglu_etc,
    trace_stats,
)


def make_generator(seed=1, fanout=4, n_keys=1000, n_clients=3, rate=100.0):
    streams = StreamFactory(seed)
    return TaskGenerator(
        fanout=FixedFanout(fanout),
        popularity=UniformPopularity(n_keys),
        value_sizes=ValueSizeRegistry(atikoglu_etc(), seed=seed),
        arrivals=PoissonArrivals(rate),
        n_clients=n_clients,
        streams=streams,
    )


class TestDataModel:
    def test_operation_validates_size(self):
        with pytest.raises(ValueError):
            Operation(op_id=0, task_id=0, key=1, value_size=0)

    def test_task_requires_operations(self):
        with pytest.raises(ValueError):
            Task(task_id=0, arrival_time=0.0, client_id=0, operations=())

    def test_task_rejects_negative_arrival(self):
        op = Operation(op_id=0, task_id=0, key=1, value_size=10)
        with pytest.raises(ValueError):
            Task(task_id=0, arrival_time=-1.0, client_id=0, operations=(op,))

    def test_task_aggregates(self):
        ops = tuple(
            Operation(op_id=i, task_id=0, key=i, value_size=100) for i in range(4)
        )
        task = Task(task_id=0, arrival_time=1.0, client_id=0, operations=ops)
        assert task.fanout == 4
        assert task.total_bytes == 400
        assert task.keys() == [0, 1, 2, 3]


class TestValueSizeRegistry:
    def test_consistent_per_key(self):
        reg = ValueSizeRegistry(atikoglu_etc(), seed=42)
        assert reg.size_of(7) == reg.size_of(7)

    def test_deterministic_across_instances(self):
        a = ValueSizeRegistry(atikoglu_etc(), seed=42)
        b = ValueSizeRegistry(atikoglu_etc(), seed=42)
        assert [a.size_of(k) for k in range(100)] == [b.size_of(k) for k in range(100)]

    def test_different_seeds_differ(self):
        a = ValueSizeRegistry(atikoglu_etc(), seed=1)
        b = ValueSizeRegistry(atikoglu_etc(), seed=2)
        assert [a.size_of(k) for k in range(50)] != [b.size_of(k) for k in range(50)]

    def test_len_counts_distinct_keys(self):
        reg = ValueSizeRegistry(FixedValueSize(10), seed=1)
        reg.size_of(1)
        reg.size_of(1)
        reg.size_of(2)
        assert len(reg) == 2


class TestTaskGenerator:
    def test_ids_unique_and_sequential(self):
        gen = make_generator()
        tasks = gen.generate(10)
        assert [t.task_id for t in tasks] == list(range(10))
        op_ids = [op.op_id for t in tasks for op in t.operations]
        assert op_ids == list(range(len(op_ids)))

    def test_arrivals_increase(self):
        tasks = make_generator().generate(100)
        times = [t.arrival_time for t in tasks]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_clients_in_range(self):
        tasks = make_generator(n_clients=3).generate(200)
        assert {t.client_id for t in tasks} <= {0, 1, 2}

    def test_keys_distinct_within_task(self):
        tasks = make_generator(fanout=8).generate(100)
        for t in tasks:
            assert len(set(t.keys())) == t.fanout

    def test_deterministic_given_seed(self):
        t1 = make_generator(seed=5).generate(20)
        t2 = make_generator(seed=5).generate(20)
        assert [t.keys() for t in t1] == [t.keys() for t in t2]
        assert [t.arrival_time for t in t1] == [t.arrival_time for t in t2]

    def test_fanout_capped_by_keyspace(self):
        gen = make_generator(fanout=100, n_keys=10)
        task = gen.next_task()
        assert task.fanout == 10

    def test_value_sizes_consistent_across_tasks(self):
        gen = make_generator(n_keys=5, fanout=5)
        t1, t2 = gen.generate(2)
        sizes1 = {op.key: op.value_size for op in t1.operations}
        sizes2 = {op.key: op.value_size for op in t2.operations}
        for key in set(sizes1) & set(sizes2):
            assert sizes1[key] == sizes2[key]


class TestTraceStats:
    def test_stats_shape(self):
        tasks = make_generator(fanout=4, rate=100.0).generate(200)
        stats = trace_stats(tasks)
        assert stats["n_tasks"] == 200
        assert stats["mean_fanout"] == pytest.approx(4.0)
        assert stats["task_rate"] == pytest.approx(100.0, rel=0.3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])


class TestBufferedDistinctKeys:
    """The generator's buffered key path must mirror ``sample_distinct``.

    There is exactly one copy of the distinct-key algorithm
    (``PopularityModel.sample_distinct``); the generator only swaps in a
    block-buffered draw source via the ``next_key`` parameter.  These
    tests pin that the buffered source is draw-for-draw identical to
    unbuffered sampling on the same stream, including the dense-fallback
    edge, and that stale buffers are invalidated when the generator's
    source models are reassigned mid-run.
    """

    def test_matches_sample_distinct_draw_for_draw(self):
        from repro.sim.rng import Stream
        from repro.workload.popularity import ZipfPopularity

        popularity = ZipfPopularity(300, 0.9)
        generator = make_generator(n_keys=300)
        generator.popularity = popularity
        generator._key_stream = Stream(7)
        reference_stream = Stream(7)
        # Mixed counts, repeated small draws, and n_keys itself (which
        # exhausts the attempt limit and exercises the dense fallback).
        for count in (1, 3, 5, 2, 8, 1, 4, 300, 2):
            assert generator._distinct_keys(count) == popularity.sample_distinct(
                reference_stream, count
            )

    def test_rejects_overlarge_count_like_sample_distinct(self):
        generator = make_generator(n_keys=10)
        with pytest.raises(ValueError):
            generator._distinct_keys(11)

    def test_custom_sample_distinct_override_is_honored(self):
        """A popularity model overriding sample_distinct bypasses the
        buffered mirror entirely (its semantics win over batching)."""

        class EvenKeysOnly(UniformPopularity):
            def sample_distinct(self, stream, count):
                return [2 * i for i in range(count)]

        streams = StreamFactory(1)
        generator = TaskGenerator(
            fanout=FixedFanout(3),
            popularity=EvenKeysOnly(1000),
            value_sizes=ValueSizeRegistry(FixedValueSize(64), seed=1),
            arrivals=PoissonArrivals(100.0),
            n_clients=2,
            streams=streams,
        )
        task = generator.next_task()
        assert [op.key for op in task.operations] == [0, 2, 4]

    def test_reassigned_popularity_invalidates_key_buffer(self):
        """Swapping the popularity model drops pre-drawn keys of the old
        model instead of serving up to a block of stale draws."""
        generator = make_generator(fanout=3, n_keys=1000)
        generator.next_task()  # fills the key buffer from the 1000-keyspace
        generator.popularity = UniformPopularity(10)
        task = generator.next_task()
        assert all(0 <= op.key < 10 for op in task.operations), [
            op.key for op in task.operations
        ]

    def test_reassigned_arrivals_invalidates_gap_buffer(self):
        """Swapping the arrival process must take effect immediately."""
        from repro.workload import DeterministicArrivals

        generator = make_generator(rate=100.0)
        first = generator.next_task()
        generator.arrivals = DeterministicArrivals(1.0)  # 1s gaps exactly
        second = generator.next_task()
        third = generator.next_task()
        assert second.arrival_time - first.arrival_time == pytest.approx(1.0)
        assert third.arrival_time - second.arrival_time == pytest.approx(1.0)

    def test_reassigned_n_clients_invalidates_client_buffer(self):
        generator = make_generator(n_clients=50)
        generator.next_task()
        generator.n_clients = 2
        clients = {generator.next_task().client_id for _ in range(30)}
        assert clients <= {0, 1}

    def test_custom_override_honored_after_late_reassignment(self):
        """The override check runs per task, so swapping the popularity
        model on a live generator switches paths immediately."""

        class OddKeysOnly(UniformPopularity):
            def sample_distinct(self, stream, count):
                return [2 * i + 1 for i in range(count)]

        generator = make_generator(fanout=3)
        generator.next_task()  # buffered base path, seeds the buffers
        generator.popularity = OddKeysOnly(1000)
        task = generator.next_task()
        assert [op.key for op in task.operations] == [1, 3, 5]
