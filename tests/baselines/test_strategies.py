"""Unit tests for the oblivious dispatch strategy (incl. C3 pacing)."""

import pytest

from repro.baselines import C3Selector, ObliviousStrategy, RoundRobinSelector
from repro.cluster import BackendServer, Client, Network, RingPlacement
from repro.cluster.network import ConstantLatency
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def make_task(task_id, keys, size=100):
    ops = tuple(
        Operation(op_id=task_id * 100 + i, task_id=task_id, key=k, value_size=size)
        for i, k in enumerate(keys)
    )
    return Task(task_id=task_id, arrival_time=0.0, client_id=0, operations=ops)


class Rig:
    def __init__(self, selector_factory, n_servers=3, rf=2):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(1e-4), stream=Stream(0, "n")
        )
        self.placement = RingPlacement(n_servers=n_servers, replication_factor=rf)
        self.model = ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none")
        self.servers = [
            BackendServer(
                self.env,
                server_id=s,
                cores=2,
                service_model=self.model,
                network=self.network,
                service_stream=Stream(s + 1, f"s{s}"),
            )
            for s in range(n_servers)
        ]
        self.strategy = ObliviousStrategy(
            self.placement, selector_factory(self.env), self.model
        )
        self.completions = []
        self.client = Client(
            self.env,
            client_id=0,
            network=self.network,
            strategy=self.strategy,
            on_complete=self.completions.append,
        )


class TestObliviousStrategy:
    def test_prepare_assigns_valid_replicas(self):
        rig = Rig(lambda env: RoundRobinSelector())
        requests = rig.strategy.prepare(make_task(0, keys=range(20)))
        for r in requests:
            assert r.server_id in rig.placement.replicas_of(r.partition)
            assert r.expected_service > 0

    def test_name_includes_selector(self):
        rig = Rig(lambda env: RoundRobinSelector())
        assert rig.strategy.name == "oblivious+round-robin"

    def test_end_to_end(self):
        rig = Rig(lambda env: RoundRobinSelector())
        for t in range(5):
            rig.client.submit(make_task(t, keys=range(4)))
        rig.env.run(until=5.0)
        assert len(rig.completions) == 5


class TestC3Pacing:
    def make_c3_rig(self, initial_rate):
        return Rig(
            lambda env: C3Selector(
                env,
                concurrency_weight=2,
                stream=Stream(7),
                rate_control=True,
                initial_rate=initial_rate,
            )
        )

    def test_paced_dispatch_still_completes(self):
        # Tiny rate: almost everything goes through the pacer backlog.
        rig = self.make_c3_rig(initial_rate=200.0)
        for t in range(4):
            rig.client.submit(make_task(t, keys=range(6)))
        rig.env.run(until=30.0)
        assert len(rig.completions) == 4

    def test_pacing_delays_dispatch(self):
        rig = self.make_c3_rig(initial_rate=50.0)
        # 60 ops over 3 servers: ~20 per server, beyond the 16-token burst
        # depth, so the excess is paced at 50 req/s (20ms per token).
        rig.client.submit(make_task(0, keys=range(60)))
        rig.env.run(until=60.0)
        assert len(rig.completions) == 1
        completion = rig.completions[0]
        assert completion.latency > 1e-3

    def test_unpaced_when_tokens_plentiful(self):
        rig = self.make_c3_rig(initial_rate=1e6)
        rig.client.submit(make_task(0, keys=range(6)))
        rig.env.run(until=5.0)
        assert rig.completions[0].latency < 1e-3
