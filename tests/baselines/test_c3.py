"""Unit tests for the C3 baseline: scoring, feedback, rate control."""

import math

import pytest

from repro.baselines import C3Selector, CubicRateLimiter
from repro.cluster import RequestMessage, ResponseMessage, ServerFeedback
from repro.sim import Environment, Stream
from repro.workload.tasks import Operation


def req(server=0, size=100, op_id=0):
    r = RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=size),
        task_id=0,
        client_id=0,
        partition=0,
    )
    r.server_id = server
    r.dispatched_at = 0.0
    return r


def resp(request, queue_length=0, in_service=0, service_time=1e-3):
    return ResponseMessage(
        request=request,
        feedback=ServerFeedback(
            server_id=request.server_id,
            queue_length=queue_length,
            in_service=in_service,
            ewma_service_time=service_time,
        ),
    )


def make_selector(env=None, rate_control=False):
    env = env or Environment()
    return env, C3Selector(
        env, concurrency_weight=10, stream=Stream(1), rate_control=rate_control
    )


class TestScoring:
    def test_unknown_servers_explored(self):
        _, sel = make_selector()
        assert sel.score(0) == -math.inf
        choices = {sel.choose((0, 1, 2), req()) for _ in range(100)}
        assert choices == {0, 1, 2}  # random among unexplored

    def test_feedback_shapes_score(self):
        env, sel = make_selector()
        r0, r1 = req(server=0), req(server=1)
        sel.on_assign(r0)
        sel.on_response(resp(r0, queue_length=0, service_time=1e-3))
        sel.on_assign(r1)
        sel.on_response(resp(r1, queue_length=50, service_time=1e-3))
        assert sel.score(0) < sel.score(1)
        assert sel.choose((0, 1), req()) == 0

    def test_cubic_queue_penalty(self):
        """Doubling the queue estimate should way-more-than-double the
        penalty term (cubic growth)."""
        env, sel = make_selector()
        for server, q in ((0, 10), (1, 20)):
            r = req(server=server)
            sel.on_assign(r)
            sel.on_response(resp(r, queue_length=q, service_time=1e-3))
        s0, s1 = sel.score(0), sel.score(1)
        assert s1 > 4 * s0  # cubic, not linear

    def test_own_outstanding_penalized(self):
        env, sel = make_selector()
        for server in (0, 1):
            r = req(server=server)
            sel.on_assign(r)
            sel.on_response(resp(r, queue_length=1, service_time=1e-3))
        # Pile outstanding (unanswered) requests onto server 0.
        for _ in range(5):
            sel.on_assign(req(server=0))
        assert sel.choose((0, 1), req()) == 1

    def test_outstanding_underflow_detected(self):
        _, sel = make_selector()
        with pytest.raises(RuntimeError):
            sel.on_response(resp(req(server=0)))

    def test_validates(self):
        env = Environment()
        with pytest.raises(ValueError):
            C3Selector(env, concurrency_weight=0, stream=Stream(1))
        with pytest.raises(ValueError):
            C3Selector(env, concurrency_weight=2, stream=Stream(1), initial_rate=0.0)


class TestCubicRateLimiter:
    def test_tokens_accumulate_with_time(self):
        env = Environment()
        limiter = CubicRateLimiter(env, initial_rate=10.0, burst=1.0)
        assert limiter.try_acquire()
        assert not limiter.try_acquire()  # bucket empty
        env.timeout(0.1)
        env.run()  # advance virtual time by 0.1s => one token at 10/s
        assert limiter.try_acquire()

    def test_congestion_cuts_rate(self):
        env = Environment()
        limiter = CubicRateLimiter(env, initial_rate=1000.0)
        limiter.on_congestion()
        assert limiter.rate == pytest.approx(800.0)
        assert limiter.rate_max == pytest.approx(1000.0)

    def test_congestion_reaction_rate_limited(self):
        env = Environment()
        limiter = CubicRateLimiter(env, initial_rate=1000.0, reaction_interval=0.05)
        limiter.on_congestion()
        limiter.on_congestion()  # same instant: ignored
        assert limiter.congestion_events == 1

    def test_cubic_recovery_reaches_plateau(self):
        env = Environment()
        limiter = CubicRateLimiter(env, initial_rate=1000.0)
        limiter.on_congestion()
        env.timeout(10.0)
        env.run()
        limiter.on_ack()
        assert limiter.rate > 1000.0  # grew past the previous plateau

    def test_min_rate_floor(self):
        env = Environment()
        limiter = CubicRateLimiter(
            env, initial_rate=120.0, min_rate=100.0, reaction_interval=1e-9
        )
        for _ in range(50):
            limiter.on_congestion()
        assert limiter.rate >= 100.0

    def test_time_until_token(self):
        env = Environment()
        limiter = CubicRateLimiter(env, initial_rate=10.0, burst=1.0)
        limiter.try_acquire()
        wait = limiter.time_until_token()
        assert 0 < wait <= 0.1

    def test_validates(self):
        env = Environment()
        with pytest.raises(ValueError):
            CubicRateLimiter(env, initial_rate=0.0)
        with pytest.raises(ValueError):
            CubicRateLimiter(env, beta=1.5)
        with pytest.raises(ValueError):
            CubicRateLimiter(env, burst=0.5)


class TestRateControlIntegration:
    def test_congestion_detected_when_sends_outpace_receives(self):
        env = Environment()
        sel = C3Selector(
            env,
            concurrency_weight=5,
            stream=Stream(1),
            rate_window=0.1,
            rate_control=True,
        )

        def driver(env):
            # Send 2x faster than we acknowledge.
            state = sel.state_of(0)
            for i in range(60):
                r = req(server=0, op_id=i)
                sel.on_assign(r)
                sel.on_dispatch(r)
                if i % 2 == 0:
                    r.dispatched_at = env.now
                    sel.on_response(resp(r))
                else:
                    state.outstanding -= 1  # swallow without receive record
                yield env.timeout(0.005)

        env.process(driver(env))
        env.run()
        assert sel.state_of(0).limiter.congestion_events > 0

    def test_no_congestion_when_balanced(self):
        env = Environment()
        sel = C3Selector(
            env, concurrency_weight=5, stream=Stream(1), rate_control=True
        )

        def driver(env):
            for i in range(100):
                r = req(server=0, op_id=i)
                sel.on_assign(r)
                sel.on_dispatch(r)
                yield env.timeout(0.002)
                r.dispatched_at = env.now
                sel.on_response(resp(r))

        env.process(driver(env))
        env.run()
        assert sel.state_of(0).limiter.congestion_events == 0

    def test_try_acquire_unlimited_without_rate_control(self):
        env, sel = make_selector(rate_control=False)
        assert all(sel.try_acquire(0) for _ in range(1000))
        assert sel.time_until_slot(0) == 0.0
