"""Unit tests for the hedged-requests baseline."""

import pytest

from repro.baselines import HedgedStrategy, LeastOutstandingSelector
from repro.cluster import BackendServer, Client, Network, RingPlacement
from repro.cluster.faults import SlowdownInjector
from repro.cluster.network import ConstantLatency
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics import ExactSample
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def make_task(task_id, n_ops, size=1000):
    ops = tuple(
        Operation(op_id=task_id * 100 + i, task_id=task_id, key=i, value_size=size)
        for i in range(n_ops)
    )
    return Task(task_id=task_id, arrival_time=0.0, client_id=0, operations=ops)


class Rig:
    def __init__(self, hedge_delay=0.01, slowdown=None, rf=2):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(1e-4), stream=Stream(0, "n")
        )
        self.placement = RingPlacement(n_servers=3, replication_factor=rf)
        self.model = ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none")
        self.servers = [
            BackendServer(
                self.env,
                server_id=s,
                cores=1,
                service_model=self.model,
                network=self.network,
                service_stream=Stream(s + 1, f"s{s}"),
            )
            for s in range(3)
        ]
        if slowdown is not None:
            SlowdownInjector(
                self.env, self.servers[slowdown], factor=100.0, duration=10.0
            )
        self.latencies = ExactSample()
        self.strategy = HedgedStrategy(
            self.placement,
            LeastOutstandingSelector(),
            self.model,
            hedge_delay=hedge_delay,
            budget_fraction=1.0,
            adaptive=False,
        )
        self.completions = []
        self.client = Client(
            self.env,
            client_id=0,
            network=self.network,
            strategy=self.strategy,
            task_recorder=self.latencies,
            on_complete=self.completions.append,
        )


class TestHedging:
    def test_no_hedges_when_fast(self):
        rig = Rig(hedge_delay=1.0)  # far beyond any response time
        rig.client.submit(make_task(0, n_ops=4))
        rig.env.run(until=5.0)
        assert len(rig.completions) == 1
        assert rig.strategy.hedges_sent == 0
        assert rig.strategy.wasted_responses == 0

    def test_hedges_fire_for_stragglers(self):
        # Server 0 is 100x slow: primaries landing there straggle and get
        # hedged to the other replica of their group.
        rig = Rig(hedge_delay=0.005, slowdown=0)
        for t in range(4):
            rig.client.submit(make_task(t, n_ops=3))
        rig.env.run(until=30.0)
        assert len(rig.completions) == 4
        assert rig.strategy.hedges_sent > 0

    def test_hedging_cuts_straggler_latency(self):
        """With hedging, no task should wait for the 100x-slow replica."""
        slow = Rig(hedge_delay=100.0, slowdown=0)  # effectively no hedging
        fast = Rig(hedge_delay=0.005, slowdown=0)
        for rig in (slow, fast):
            for t in range(4):
                rig.client.submit(make_task(t, n_ops=3))
            rig.env.run(until=60.0)
        assert fast.latencies.max < slow.latencies.max

    def test_task_completes_exactly_once_despite_duplicates(self):
        rig = Rig(hedge_delay=0.0005, slowdown=0)
        rig.client.submit(make_task(0, n_ops=5))
        rig.env.run(until=30.0)
        assert len(rig.completions) == 1
        assert rig.client.tasks_completed == 1

    def test_no_hedge_with_replication_factor_one(self):
        rig = Rig(hedge_delay=0.0005, slowdown=0, rf=1)
        rig.client.submit(make_task(0, n_ops=3))
        rig.env.run(until=200.0)
        assert rig.strategy.hedges_sent == 0  # nowhere to go
        assert len(rig.completions) == 1

    def test_validates(self):
        placement = RingPlacement(n_servers=3, replication_factor=2)
        model = ServiceTimeModel(overhead=0.0, bandwidth=1e6, noise="none")
        with pytest.raises(ValueError):
            HedgedStrategy(placement, LeastOutstandingSelector(), model, hedge_delay=0.0)
        with pytest.raises(ValueError):
            HedgedStrategy(placement, LeastOutstandingSelector(), model, max_hedges=0)
        with pytest.raises(ValueError):
            HedgedStrategy(
                placement, LeastOutstandingSelector(), model, budget_fraction=0.0
            )


class TestHedgedEndToEnd:
    def test_runner_integration(self):
        cfg = ExperimentConfig(strategy="hedged", n_tasks=300, n_keys=2000)
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 300
        assert "hedges_sent" in result.extras
        # Duplicates mean servers may serve more requests than ops exist.
        assert result.requests_served >= result.tasks_measured
