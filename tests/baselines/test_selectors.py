"""Unit tests for replica selectors (random, RR, LOR, LOB)."""

import pytest

from repro.baselines import (
    LeastOutstandingBytesSelector,
    LeastOutstandingSelector,
    RandomSelector,
    RoundRobinSelector,
    make_selector,
)
from repro.cluster import RequestMessage, ResponseMessage, ServerFeedback
from repro.sim import Stream
from repro.workload.tasks import Operation


def req(server=0, size=100, partition=0, op_id=0):
    r = RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=size),
        task_id=0,
        client_id=0,
        partition=partition,
    )
    r.server_id = server
    return r


def resp(request):
    return ResponseMessage(
        request=request,
        feedback=ServerFeedback(
            server_id=request.server_id, queue_length=0, in_service=0, ewma_service_time=0.0
        ),
    )


class TestRandom:
    def test_choices_within_group(self):
        sel = RandomSelector(Stream(1))
        choices = {sel.choose((3, 4, 5), req()) for _ in range(200)}
        assert choices == {3, 4, 5}


class TestRoundRobin:
    def test_cycles_per_partition(self):
        sel = RoundRobinSelector()
        order = [sel.choose((1, 2, 3), req(partition=0)) for _ in range(6)]
        assert order == [1, 2, 3, 1, 2, 3]

    def test_partitions_independent(self):
        sel = RoundRobinSelector()
        sel.choose((1, 2), req(partition=0))
        assert sel.choose((5, 6), req(partition=1)) == 5


class TestLeastOutstanding:
    def test_prefers_idle_server(self):
        sel = LeastOutstandingSelector()
        r1 = req(server=1)
        sel.on_assign(r1)
        assert sel.choose((1, 2), req()) == 2

    def test_response_decrements(self):
        sel = LeastOutstandingSelector()
        r1 = req(server=1)
        sel.on_assign(r1)
        sel.on_response(resp(r1))
        assert sel.outstanding[1] == 0

    def test_underflow_detected(self):
        sel = LeastOutstandingSelector()
        with pytest.raises(RuntimeError):
            sel.on_response(resp(req(server=1)))

    def test_tie_break_uses_stream(self):
        sel = LeastOutstandingSelector(stream=Stream(2))
        choices = {sel.choose((1, 2, 3), req()) for _ in range(100)}
        assert len(choices) > 1  # ties explored, not always first


class TestLeastOutstandingBytes:
    def test_weighs_by_bytes(self):
        sel = LeastOutstandingBytesSelector()
        big = req(server=1, size=10_000, op_id=1)
        sel.on_assign(big)
        small = req(server=2, size=10, op_id=2)
        sel.on_assign(small)
        # Server 2 carries fewer outstanding bytes despite equal counts.
        assert sel.choose((1, 2), req()) == 2

    def test_response_returns_bytes(self):
        sel = LeastOutstandingBytesSelector()
        r = req(server=1, size=500)
        sel.on_assign(r)
        sel.on_response(resp(r))
        assert sel.outstanding_bytes[1] == 0

    def test_underflow_detected(self):
        sel = LeastOutstandingBytesSelector()
        with pytest.raises(RuntimeError):
            sel.on_response(resp(req(server=1, size=10)))


class TestFactory:
    def test_known(self):
        assert isinstance(make_selector("random", Stream(1)), RandomSelector)
        assert isinstance(make_selector("round-robin"), RoundRobinSelector)
        assert isinstance(make_selector("least-outstanding"), LeastOutstandingSelector)
        assert isinstance(
            make_selector("least-outstanding-bytes"), LeastOutstandingBytesSelector
        )

    def test_random_requires_stream(self):
        with pytest.raises(ValueError):
            make_selector("random")

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_selector("best")
