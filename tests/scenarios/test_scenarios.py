"""Unit tests for the scenario layer: specs, registry, the built-in library."""

import dataclasses

import pytest

from repro.cluster.faults import FaultSchedule, SlowdownFault
from repro.harness import ExperimentConfig, run_experiment
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    get_scenario,
    make_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

REQUIRED = (
    "steady-state",
    "straggler",
    "recurring-gc",
    "flash-crowd",
    "hotspot-skew",
    "heterogeneous-cluster",
)


class TestLibrary:
    def test_required_scenarios_registered(self):
        names = scenario_names()
        for name in REQUIRED:
            assert name in names
        assert len(names) >= 6

    def test_every_scenario_builds_a_valid_config(self):
        for name in SCENARIOS:
            cfg = SCENARIOS[name].build_config(strategy="c3", n_tasks=50)
            assert isinstance(cfg, ExperimentConfig)
            assert cfg.scenario == name
            assert cfg.n_tasks == 50

    def test_straggler_faults_target_valid_servers(self):
        cfg = get_scenario("straggler").build_config(n_tasks=10)
        schedule = cfg.faults()
        assert len(schedule) == 1
        assert schedule.events[0].factor == 4.0

    def test_hotspot_overrides_workload(self):
        cfg = get_scenario("hotspot-skew").build_config(n_tasks=10)
        assert cfg.zipf_skew == 1.2
        assert cfg.n_keys == 20_000

    def test_flash_crowd_lowers_base_load(self):
        cfg = get_scenario("flash-crowd").build_config(n_tasks=10)
        assert cfg.load == pytest.approx(0.60)
        assert cfg.fault_schedule.events[0].kind == "flash-crowd"


class TestSpec:
    def test_spec_is_frozen_and_hashable(self):
        spec = get_scenario("steady-state")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "other"
        hash(spec)

    def test_overrides_win_over_scenario(self):
        cfg = get_scenario("hotspot-skew").build_config(
            n_tasks=10, zipf_skew=0.5
        )
        assert cfg.zipf_skew == 0.5

    def test_reserved_overrides_rejected(self):
        with pytest.raises(ValueError, match="may not override"):
            make_scenario("bad", "x", overrides={"strategy": "c3"})

    def test_describe_mentions_faults(self):
        text = get_scenario("straggler").describe()
        assert "straggler" in text and "slowdown" in text


class TestRegistry:
    def test_unknown_scenario_error_lists_known(self):
        with pytest.raises(ValueError, match="unknown scenario.*steady-state"):
            get_scenario("does-not-exist")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("straggler"))

    def test_third_party_registration_roundtrip(self):
        spec = make_scenario(
            "test-tmp",
            "temporary",
            faults=FaultSchedule((SlowdownFault(servers=(1,), factor=2.0),)),
        )
        register_scenario(spec)
        try:
            assert "test-tmp" in SCENARIOS
            assert SCENARIOS["test-tmp"] is spec
        finally:
            unregister_scenario("test-tmp")
        assert "test-tmp" not in SCENARIOS

    def test_mapping_view(self):
        assert len(SCENARIOS) == len(scenario_names())
        assert set(iter(SCENARIOS)) == set(scenario_names())


class TestScenarioRuns:
    """Scaled-down end-to-end runs: conservation under each fault shape."""

    @pytest.mark.parametrize("name", ["crash-restart", "recurring-gc"])
    def test_faulted_scenarios_conserve_tasks(self, name):
        cfg = get_scenario(name).build_config(
            strategy="oblivious-lor", n_tasks=600, n_keys=2000
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 600

    def test_crash_restart_fires_and_conserves(self):
        # Enough tasks that the 0.1s crash onset lies inside the run.
        cfg = get_scenario("crash-restart").build_config(
            strategy="oblivious-lor", n_tasks=2500, n_keys=2000
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 2500
        assert result.extras["crash_windows"] >= 1


class TestBuildConfigOverrides:
    def test_cluster_replaceable_at_call_time(self):
        from repro.cluster.topology import ClusterSpec
        from repro.scenarios import get_scenario

        cfg = get_scenario("steady-state").build_config(
            n_tasks=10, cluster=ClusterSpec(n_servers=3, cores_per_server=2)
        )
        assert cfg.cluster.n_servers == 3

    def test_fault_schedule_replaceable_at_call_time(self):
        from repro.cluster.faults import NO_FAULTS
        from repro.scenarios import get_scenario

        cfg = get_scenario("straggler").build_config(
            n_tasks=10, fault_schedule=NO_FAULTS
        )
        assert len(cfg.faults()) == 0

    def test_scenario_name_not_overridable(self):
        from repro.scenarios import get_scenario

        with pytest.raises(ValueError, match="cannot be overridden"):
            get_scenario("steady-state").build_config(scenario="other")


class TestRemediatedPairs:
    """The ``*-remediated`` twins close the SLO loop on a fault scenario."""

    PAIRS = (
        ("hot-shard", "hot-shard-remediated"),
        ("flash-crowd", "flash-crowd-remediated"),
        ("crash-restart", "crash-restart-remediated"),
    )

    def test_pairs_are_registered(self):
        names = scenario_names()
        for base, remediated in self.PAIRS:
            assert base in names
            assert remediated in names

    def test_remediated_twins_enable_the_slo_loop(self):
        from repro.scenarios.library import REMEDIATION_SLO_P99_MS

        for _, remediated in self.PAIRS:
            cfg = get_scenario(remediated).build_config(n_tasks=10)
            assert cfg.remediation == "slo"
            assert cfg.slo_p99_ms == REMEDIATION_SLO_P99_MS

    def test_twins_share_the_fault_shape(self):
        for base, remediated in self.PAIRS:
            base_cfg = get_scenario(base).build_config(n_tasks=10)
            rem_cfg = get_scenario(remediated).build_config(n_tasks=10)
            assert [f.kind for f in base_cfg.faults().events] == [
                f.kind for f in rem_cfg.faults().events
            ]

    def test_remediated_run_conserves_and_streams(self):
        cfg = get_scenario("hot-shard-remediated").build_config(
            strategy="c3", n_tasks=800, n_keys=2000
        )
        result = run_experiment(cfg, seed=1)
        assert result.tasks_completed == 800
        assert result.extras["bus_snapshots"] > 0
        assert "slo_breach_windows" in result.extras
        assert "remediation_actions" in result.extras

    def test_slo_mode_beats_monitor_on_the_hot_shard(self):
        """The acceptance comparison: same seed, same fault, the only
        difference is whether the detector's policy may act.  Remediation
        must strictly reduce both breach windows and the windowed p99."""
        spec = get_scenario("hot-shard")
        runs = {}
        for mode in ("monitor", "slo"):
            cfg = spec.build_config(
                strategy="c3",
                n_tasks=3000,
                remediation=mode,
                slo_p99_ms=10.0,
            )
            runs[mode] = run_experiment(cfg, seed=1)
        monitor, slo = runs["monitor"], runs["slo"]
        assert monitor.tasks_completed == slo.tasks_completed == 3000
        assert monitor.extras["remediation_actions"] == 0.0
        assert slo.extras["remediation_actions"] >= 1.0
        assert (
            slo.extras["slo_breach_windows"]
            < monitor.extras["slo_breach_windows"]
        )
        assert slo.summary().p99 < monitor.summary().p99
