"""Unit tests for the network model: delays, ordering, registration."""

import pytest

from repro.cluster import ConstantLatency, JitteredLatency, Network
from repro.sim import Environment, Stream


def make_network(latency=None):
    env = Environment()
    return env, Network(env, latency=latency, stream=Stream(0, "net"))


class TestLatencyModels:
    def test_constant_default_is_paper_value(self):
        model = ConstantLatency()
        assert model.sample(Stream(1)) == 50e-6
        assert model.mean() == 50e-6

    def test_constant_validates(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_jittered_respects_floor(self):
        model = JitteredLatency(mean=50e-6, sigma=1.0, floor=10e-6)
        stream = Stream(2)
        assert all(model.sample(stream) >= 10e-6 for _ in range(2000))

    def test_jittered_mean(self):
        model = JitteredLatency(mean=50e-6, sigma=0.3, floor=0.0)
        stream = Stream(3)
        n = 50_000
        mean = sum(model.sample(stream) for _ in range(n)) / n
        assert mean == pytest.approx(50e-6, rel=0.05)

    def test_jittered_validates(self):
        with pytest.raises(ValueError):
            JitteredLatency(mean=0.0)
        with pytest.raises(ValueError):
            JitteredLatency(mean=1.0, floor=2.0)


class TestDelivery:
    def test_message_arrives_after_one_way_latency(self):
        env, net = make_network(ConstantLatency(1.0))
        inbox = []
        net.register("dst", inbox.append)
        net.send("src", "dst", "hello")
        env.run()
        assert inbox == ["hello"]
        assert env.now == 1.0

    def test_unknown_destination_raises(self):
        _, net = make_network()
        with pytest.raises(KeyError):
            net.send("src", "nowhere", "msg")

    def test_duplicate_registration_rejected(self):
        _, net = make_network()
        net.register("a", lambda m: None)
        with pytest.raises(ValueError):
            net.register("a", lambda m: None)

    def test_fifo_per_pair_under_jitter(self):
        env, net = make_network(JitteredLatency(mean=1.0, sigma=1.5, floor=0.01))
        inbox = []
        net.register("dst", inbox.append)
        for i in range(50):
            net.send("src", "dst", i)
        env.run()
        assert inbox == list(range(50))

    def test_messages_counted(self):
        env, net = make_network()
        net.register("dst", lambda m: None)
        for _ in range(3):
            net.send("src", "dst", "x")
        env.run()
        assert net.metrics.counter("network.messages").value == 3

    def test_broadcast(self):
        env, net = make_network(ConstantLatency(0.5))
        a, b = [], []
        net.register("a", a.append)
        net.register("b", b.append)
        net.broadcast("src", ["a", "b"], "ping")
        env.run()
        assert a == ["ping"] and b == ["ping"]

    def test_send_returns_delivery_time(self):
        env, net = make_network(ConstantLatency(0.25))
        net.register("dst", lambda m: None)
        assert net.send("src", "dst", "x") == 0.25
