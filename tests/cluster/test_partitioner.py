"""Unit + property tests for placement (ring, consistent hash, explicit)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ConsistentHashRing, RingPlacement, stable_hash
from repro.cluster.partitioner import ExplicitPlacement


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(42, "salt") == stable_hash(42, "salt")

    def test_salt_changes_hash(self):
        assert stable_hash(42, "a") != stable_hash(42, "b")

    def test_spreads_sequential_keys(self):
        buckets = [stable_hash(k) % 10 for k in range(1000)]
        counts = [buckets.count(b) for b in range(10)]
        assert max(counts) / min(counts) < 1.6


class TestRingPlacement:
    def test_paper_shape_every_server_in_r_groups(self):
        """9 servers, RF 3: each server belongs to exactly 3 replica groups."""
        placement = RingPlacement(n_servers=9, replication_factor=3)
        placement.validate()
        for server in range(9):
            assert len(placement.partitions_of_server(server)) == 3

    def test_replicas_are_successors(self):
        placement = RingPlacement(n_servers=5, replication_factor=3)
        assert placement.replicas_of(3) == (3, 4, 0)

    def test_keys_cover_all_partitions(self):
        placement = RingPlacement(n_servers=9, replication_factor=3)
        partitions = {placement.partition_of(k) for k in range(2000)}
        assert partitions == set(range(9))

    def test_replication_factor_one(self):
        placement = RingPlacement(n_servers=4, replication_factor=1)
        placement.validate()
        assert placement.replicas_of(2) == (2,)

    def test_full_replication(self):
        placement = RingPlacement(n_servers=3, replication_factor=3)
        placement.validate()
        assert set(placement.replicas_of(0)) == {0, 1, 2}

    def test_validates_constructor(self):
        with pytest.raises(ValueError):
            RingPlacement(n_servers=0)
        with pytest.raises(ValueError):
            RingPlacement(n_servers=3, replication_factor=4)

    def test_bad_partition_rejected(self):
        placement = RingPlacement(n_servers=3)
        with pytest.raises(ValueError):
            placement.replicas_of(99)


class TestConsistentHashRing:
    def test_structural_invariants(self):
        ring = ConsistentHashRing(n_servers=9, replication_factor=3, n_partitions=64)
        ring.validate()

    def test_balanced_primary_ownership(self):
        ring = ConsistentHashRing(
            n_servers=10, replication_factor=3, n_partitions=1000, vnodes=64
        )
        primaries = [ring.replicas_of(p)[0] for p in range(1000)]
        counts = [primaries.count(s) for s in range(10)]
        assert max(counts) < 3 * min(counts)  # vnodes keep it roughly even

    def test_deterministic(self):
        a = ConsistentHashRing(n_servers=5, replication_factor=2)
        b = ConsistentHashRing(n_servers=5, replication_factor=2)
        assert [a.replicas_of(p) for p in range(a.n_partitions)] == [
            b.replicas_of(p) for p in range(b.n_partitions)
        ]

    def test_validates(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(n_servers=2, replication_factor=3)
        with pytest.raises(ValueError):
            ConsistentHashRing(n_servers=2, vnodes=0)


class TestExplicitPlacement:
    def test_figure1_layout(self):
        placement = ExplicitPlacement(
            key_to_partition={0: 0, 4: 0, 1: 1, 2: 1, 3: 2},
            partition_replicas=[(0,), (1,), (2,)],
            n_servers=3,
        )
        placement.validate()
        assert placement.replicas_of_key(0) == (0,)
        assert placement.replicas_of_key(2) == (1,)
        assert placement.partitions_of_server(2) == [2]

    def test_unknown_key_raises(self):
        placement = ExplicitPlacement({0: 0}, [(0,)], n_servers=1)
        with pytest.raises(KeyError):
            placement.partition_of(99)

    def test_mixed_replication_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPlacement({0: 0}, [(0,), (1, 2)], n_servers=3)

    def test_bad_partition_mapping_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPlacement({0: 5}, [(0,)], n_servers=1)


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_ring_key_always_lands_on_valid_replica_group(n_servers, rf, key):
    if rf > n_servers:
        rf = n_servers
    placement = RingPlacement(n_servers=n_servers, replication_factor=rf)
    replicas = placement.replicas_of_key(key)
    assert len(replicas) == rf
    assert len(set(replicas)) == rf
    assert all(0 <= s < n_servers for s in replicas)
