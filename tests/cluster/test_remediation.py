"""Unit tests for the SLO remediation policy and driver."""

import pytest

from repro.cluster.remediation import (
    RemediationDriver,
    RemediationLevers,
    SloRemediationPolicy,
    build_remediation,
)
from repro.cluster.topology import ClusterSpec
from repro.harness.config import ExperimentConfig
from repro.metrics.bus import BusSampler, BusSnapshot, MetricsBus
from repro.metrics.slo import BreachDetector, SloPolicy
from repro.placement import MutablePlacement
from repro.sim.engine import Environment


def snap(queue_depths, p99_ms=50.0, count=10):
    return BusSnapshot(
        time=0.0, seq=0, window=0.1, window_count=count, completed=count,
        latency_p50_ms=p99_ms / 2, latency_p99_ms=p99_ms,
        arrival_rate=100.0, served_rate=100.0,
        queue_depths=tuple(queue_depths),
    )


def paper_placement():
    return MutablePlacement(ClusterSpec().make_placement())


class FakeController:
    def __init__(self, n=9):
        self.scales = {i: 1.0 for i in range(n)}


class FakeHedged:
    def __init__(self, budget_fraction=0.05):
        self.budget_fraction = budget_fraction


class TestHotServerDiagnosis:
    def test_no_depths_means_no_hot_server(self):
        assert SloRemediationPolicy.hot_server(snap(())) is None

    def test_uniform_load_is_not_hot(self):
        assert SloRemediationPolicy.hot_server(snap([3.0] * 9)) is None

    def test_clearly_deepest_queue_is_hot(self):
        depths = [1.0] * 9
        depths[4] = 10.0
        assert SloRemediationPolicy.hot_server(snap(depths)) == 4

    def test_tiny_absolute_depths_are_ignored(self):
        # 3x the mean but well under one request of backlog: not actionable.
        depths = [0.01] * 9
        depths[2] = 0.5
        assert SloRemediationPolicy.hot_server(snap(depths)) is None


class TestPlacementAction:
    def test_group_wide_heat_boosts_the_hot_partition(self):
        placement = paper_placement()
        policy = SloRemediationPolicy(RemediationLevers(placement=placement))
        # Partition 0's whole replica group (0, 1, 2) is deep: a hot shard.
        depths = [6.0, 5.0, 5.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5]
        actions = policy.on_breach(snap(depths))
        kinds = [a["action"] for a in actions]
        assert kinds == ["boost"]
        assert actions[0]["partition"] == 0
        # The widened set keeps the original replicas and adds outsiders.
        replicas = placement.replicas_of(0)
        assert set(replicas) > {0, 1, 2}
        assert all(s not in (0, 1, 2) for s in actions[0]["servers"])

    def test_single_server_outlier_is_excluded(self):
        placement = paper_placement()
        policy = SloRemediationPolicy(RemediationLevers(placement=placement))
        # One deep queue, shallow siblings: a degraded server, not a hot shard.
        depths = [9.0, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2]
        actions = policy.on_breach(snap(depths))
        assert [a["action"] for a in actions] == ["exclude"]
        assert actions[0]["server"] == 0
        assert 0 not in placement.replicas_of(0)

    def test_second_breach_does_not_stack_placement_actions(self):
        placement = paper_placement()
        policy = SloRemediationPolicy(RemediationLevers(placement=placement))
        depths = [6.0, 5.0, 5.0] + [0.5] * 6
        assert policy.on_breach(snap(depths))
        assert policy.on_breach(snap(depths)) == []
        assert len(placement.boosted) == 1

    def test_clear_reverts_everything(self):
        placement = paper_placement()
        controller = FakeController()
        hedged = FakeHedged(budget_fraction=0.1)
        policy = SloRemediationPolicy(
            RemediationLevers(
                placement=placement, controller=controller, hedged=(hedged,)
            )
        )
        depths = [6.0, 5.0, 5.0] + [0.5] * 6
        policy.on_breach(snap(depths))
        assert placement.boosted
        assert controller.scales[0] == pytest.approx(0.5)
        assert hedged.budget_fraction == pytest.approx(0.3)
        reverted = policy.on_clear(snap([0.0] * 9))
        assert {a["action"] for a in reverted} == {
            "unboost", "credit_restore", "hedge_restore",
        }
        assert not placement.boosted
        assert controller.scales[0] == 1.0
        assert hedged.budget_fraction == pytest.approx(0.1)

    def test_no_levers_means_no_actions(self):
        policy = SloRemediationPolicy(RemediationLevers())
        assert policy.on_breach(snap([9.0] + [0.2] * 8)) == []
        assert policy.revert_all() == []


class TestBuildRemediation:
    def config(self, **overrides):
        return ExperimentConfig(strategy="c3", n_tasks=100, **overrides)

    def test_off_builds_nothing(self):
        driver = build_remediation(
            self.config(), Environment(), paper_placement(), {}, (), lambda: []
        )
        assert driver is None

    def test_monitor_streams_without_a_policy(self):
        driver = build_remediation(
            self.config(remediation="monitor", slo_p99_ms=10.0),
            Environment(), paper_placement(), {}, (), lambda: [],
        )
        assert driver.mode == "monitor"
        assert driver.detector is not None
        assert driver.policy is None

    def test_slo_wires_all_levers(self):
        controller = FakeController()
        driver = build_remediation(
            self.config(remediation="slo", slo_p99_ms=10.0),
            Environment(), paper_placement(), {"controller": controller},
            (), lambda: [],
        )
        assert driver.policy is not None
        assert driver.policy.levers.controller is controller

    def test_slo_mode_requires_a_target(self):
        with pytest.raises(ValueError, match="slo_p99_ms"):
            self.config(remediation="slo")

    def test_unknown_mode_rejected_by_config(self):
        with pytest.raises(ValueError, match="remediation"):
            self.config(remediation="aggressive")


class TestRemediationDriver:
    def driver(self, mode="slo", depths=lambda: [0.0] * 9, placement=None):
        env = Environment()
        policy = None
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=1, clear_after=1)
        )
        if mode == "slo":
            policy = SloRemediationPolicy(
                RemediationLevers(
                    placement=placement or paper_placement()
                )
            )
        return env, RemediationDriver(
            clock=env, mode=mode, sampler=BusSampler(window=0.1),
            queue_depths=depths, detector=detector, policy=policy,
            bus=MetricsBus(), interval=0.02,
        )

    def feed_breach(self, env, driver, latency=0.05):
        # Ten slow completions inside the window make p99 = 50 ms > target.
        for _ in range(10):
            driver.observe_arrival()
            driver.observe_completion(latency)

    def test_tick_publishes_a_snapshot(self):
        env, driver = self.driver(mode="monitor")
        snapshot = driver.tick()
        assert driver.bus.latest is snapshot
        assert snapshot.seq == 1

    def test_monitor_detects_but_never_acts(self):
        env, driver = self.driver(mode="monitor")
        self.feed_breach(env, driver)
        driver.tick()
        assert driver.detector.breached
        assert driver.actions == 0

    def test_slo_acts_on_breach_and_reverts_on_clear(self):
        placement = paper_placement()
        hot = lambda: [9.0] + [0.2] * 8
        env, driver = self.driver(mode="slo", depths=hot, placement=placement)
        self.feed_breach(env, driver)
        driver.tick()
        assert driver.actions == 1
        assert placement.excluded == (0,)
        events = [e.kind for e in driver.bus.events]
        assert events == ["slo-breach", "remediation"]
        # Next window is healthy: the driver reverts through the policy.
        env.run(until=0.2)
        self.feed_breach(env, driver, latency=0.001)
        driver.tick()
        assert placement.excluded == ()
        assert [e.kind for e in driver.bus.events][-2:] == [
            "slo-clear", "remediation",
        ]

    def test_reset_reverts_mid_episode_levers(self):
        placement = paper_placement()
        env, driver = self.driver(
            mode="slo", depths=lambda: [9.0] + [0.2] * 8, placement=placement
        )
        self.feed_breach(env, driver)
        driver.tick()
        assert placement.excluded == (0,)
        driver.reset()
        assert placement.excluded == ()

    def test_extras_expose_bus_and_detector_counters(self):
        env, driver = self.driver(mode="monitor")
        driver.tick()
        extras = driver.extras()
        assert extras["bus_snapshots"] == 1.0
        assert extras["remediation_actions"] == 0.0
        assert "slo_windows_evaluated" in extras

    def test_off_mode_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="active"):
            RemediationDriver(
                clock=env, mode="off", sampler=BusSampler(),
                queue_depths=lambda: [],
            )

    def test_wrap_on_complete_chains_recording(self):
        env, driver = self.driver(mode="monitor")
        seen = []

        class Completion:
            latency = 0.003

        wrapped = driver.wrap_on_complete(seen.append)
        wrapped(Completion())
        assert len(seen) == 1
        assert driver.sampler.completed == 1
