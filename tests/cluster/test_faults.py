"""Unit tests for the slowdown fault injector."""

import pytest

from repro.cluster import BackendServer, Network, SlowdownInjector, client_address, server_address
from repro.cluster.messages import RequestMessage
from repro.cluster.network import ConstantLatency
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation


def make_server(env, network):
    return BackendServer(
        env,
        server_id=0,
        cores=1,
        service_model=ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="none"),
        network=network,
        service_stream=Stream(1, "svc"),
    )


def req(op_id=0, size=1):
    return RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=size),
        task_id=0,
        client_id=0,
        partition=0,
    )


class TestSlowdownInjector:
    def make_rig(self, **injector_kwargs):
        env = Environment()
        network = Network(env, latency=ConstantLatency(0.0), stream=Stream(0, "n"))
        responses = []
        network.register(client_address(0), responses.append)
        server = make_server(env, network)
        injector = SlowdownInjector(env, server, **injector_kwargs)
        return env, network, server, injector, responses

    def test_slow_window_multiplies_service_time(self):
        env, network, server, injector, responses = self.make_rig(
            factor=3.0, start=0.0, duration=100.0
        )
        network.send(client_address(0), server_address(0), req(size=1))
        env.run(until=50.0)
        assert len(responses) == 1
        assert responses[0].request.service_time == pytest.approx(3.0)

    def test_recovery_after_window(self):
        env, network, server, injector, responses = self.make_rig(
            factor=5.0, start=0.0, duration=2.0
        )

        def driver(env):
            yield env.timeout(10.0)  # past the degraded window
            network.send(client_address(0), server_address(0), req(size=1))

        env.process(driver(env))
        env.run(until=20.0)
        assert responses[0].request.service_time == pytest.approx(1.0)
        assert injector.windows_injected == 1

    def test_periodic_windows_recur(self):
        env, network, server, injector, responses = self.make_rig(
            factor=2.0, start=0.0, duration=1.0, period=2.0
        )
        env.run(until=10.5)
        assert injector.windows_injected >= 5

    def test_delayed_start(self):
        env, network, server, injector, responses = self.make_rig(
            factor=2.0, start=5.0, duration=1.0
        )
        network.send(client_address(0), server_address(0), req(size=1))
        env.run(until=3.0)
        assert responses[0].request.service_time == pytest.approx(1.0)

    def test_validates(self):
        env = Environment()
        network = Network(env, stream=Stream(0, "n"))
        server = make_server(env, network)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, factor=1.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, duration=0.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, start=-1.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, duration=2.0, period=1.0)
