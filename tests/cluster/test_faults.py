"""Unit tests for fault injection: schedules, typed events, the legacy injector."""

import math

import pytest

from repro.cluster import (
    BackendServer,
    CrashFault,
    FaultInjector,
    FaultSchedule,
    FlashCrowdFault,
    Network,
    NetworkJitterFault,
    SlowdownFault,
    SlowdownInjector,
    client_address,
    server_address,
)
from repro.cluster.messages import RequestMessage
from repro.cluster.network import ConstantLatency, JitteredLatency
from repro.sim import Environment, Stream
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation


def make_server(env, network, server_id=0):
    return BackendServer(
        env,
        server_id=server_id,
        cores=1,
        service_model=ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="none"),
        network=network,
        service_stream=Stream(1, f"svc{server_id}"),
    )


def req(op_id=0, size=1):
    return RequestMessage(
        op=Operation(op_id=op_id, task_id=0, key=0, value_size=size),
        task_id=0,
        client_id=0,
        partition=0,
    )


class TestSlowdownInjector:
    def make_rig(self, **injector_kwargs):
        env = Environment()
        network = Network(env, latency=ConstantLatency(0.0), stream=Stream(0, "n"))
        responses = []
        network.register(client_address(0), responses.append)
        server = make_server(env, network)
        injector = SlowdownInjector(env, server, **injector_kwargs)
        return env, network, server, injector, responses

    def test_slow_window_multiplies_service_time(self):
        env, network, server, injector, responses = self.make_rig(
            factor=3.0, start=0.0, duration=100.0
        )
        network.send(client_address(0), server_address(0), req(size=1))
        env.run(until=50.0)
        assert len(responses) == 1
        assert responses[0].request.service_time == pytest.approx(3.0)

    def test_recovery_after_window(self):
        env, network, server, injector, responses = self.make_rig(
            factor=5.0, start=0.0, duration=2.0
        )

        def driver(env):
            yield env.timeout(10.0)  # past the degraded window
            network.send(client_address(0), server_address(0), req(size=1))

        env.process(driver(env))
        env.run(until=20.0)
        assert responses[0].request.service_time == pytest.approx(1.0)
        assert injector.windows_injected == 1

    def test_periodic_windows_recur(self):
        env, network, server, injector, responses = self.make_rig(
            factor=2.0, start=0.0, duration=1.0, period=2.0
        )
        env.run(until=10.5)
        assert injector.windows_injected >= 5

    def test_delayed_start(self):
        env, network, server, injector, responses = self.make_rig(
            factor=2.0, start=5.0, duration=1.0
        )
        network.send(client_address(0), server_address(0), req(size=1))
        env.run(until=3.0)
        assert responses[0].request.service_time == pytest.approx(1.0)

    def test_validates(self):
        env = Environment()
        network = Network(env, stream=Stream(0, "n"))
        server = make_server(env, network)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, factor=1.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, duration=0.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, start=-1.0)
        with pytest.raises(ValueError):
            SlowdownInjector(env, server, duration=2.0, period=1.0)


class TestFaultEventValidation:
    def test_slowdown_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SlowdownFault(servers=(0,), factor=1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlowdownFault(servers=(0,), duration=0.0)
        with pytest.raises(ValueError):
            SlowdownFault(servers=(0,), start=-1.0)
        with pytest.raises(ValueError):
            SlowdownFault(servers=(0,), duration=2.0, period=1.0)

    def test_permanent_fault_cannot_recur(self):
        with pytest.raises(ValueError):
            SlowdownFault(servers=(0,), duration=math.inf, period=1.0)
        with pytest.raises(ValueError):
            CrashFault(servers=(0,), duration=math.inf)

    def test_single_int_target_coerced(self):
        assert SlowdownFault(servers=0).servers == (0,)
        assert CrashFault(servers=2).servers == (2,)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            SlowdownFault(servers=())
        with pytest.raises(ValueError):
            CrashFault(servers=())

    def test_flash_crowd_and_jitter_validate(self):
        with pytest.raises(ValueError):
            FlashCrowdFault(multiplier=1.0)
        with pytest.raises(ValueError):
            NetworkJitterFault(factor=0.5)


class TestFaultSchedule:
    def test_len_bool_and_concat(self):
        empty = FaultSchedule()
        assert not empty and len(empty) == 0
        one = FaultSchedule((SlowdownFault(servers=(0,)),))
        two = one + FaultSchedule((CrashFault(servers=(1,)),))
        assert len(two) == 2 and bool(two)

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule(("not-a-fault",))

    def test_validate_targets_names_range(self):
        schedule = FaultSchedule((SlowdownFault(servers=(7,)),))
        with pytest.raises(ValueError, match=r"0\.\.2"):
            schedule.validate_targets(3)
        schedule.validate_targets(8)  # in range: no raise

    def test_describe_mentions_each_event(self):
        schedule = FaultSchedule(
            (SlowdownFault(servers=(1,), factor=2.0), FlashCrowdFault())
        )
        text = "\n".join(schedule.describe())
        assert "slowdown x2" in text and "flash crowd" in text


class _Rig:
    """n servers on a zero-latency network, responses collected per client."""

    def __init__(self, n_servers=2):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(0.0), stream=Stream(0, "n")
        )
        self.responses = []
        self.network.register(client_address(0), self.responses.append)
        self.servers = [
            make_server(self.env, self.network, server_id=i)
            for i in range(n_servers)
        ]

    def send(self, server_id, size=1, op_id=0):
        self.network.send(
            client_address(0), server_address(server_id), req(op_id=op_id, size=size)
        )


class TestFaultInjector:
    def test_overlapping_slowdowns_on_distinct_servers(self):
        rig = _Rig(n_servers=2)
        schedule = FaultSchedule(
            (
                SlowdownFault(servers=(0,), factor=2.0, start=0.0, duration=10.0),
                SlowdownFault(servers=(1,), factor=3.0, start=1.0, duration=10.0),
            )
        )
        injector = FaultInjector(rig.env, schedule, rig.servers, rig.network)

        def driver(env):
            yield env.timeout(2.0)  # both windows open
            rig.send(0, op_id=0)
            rig.send(1, op_id=1)

        rig.env.process(driver(rig.env))
        rig.env.run(until=8.0)
        by_op = {r.request.op.op_id: r.request.service_time for r in rig.responses}
        assert by_op[0] == pytest.approx(2.0)
        assert by_op[1] == pytest.approx(3.0)
        assert injector.windows["slowdown"] == 2

    def test_overlapping_slowdowns_same_server_compose(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule(
            (
                SlowdownFault(servers=(0,), factor=2.0, start=0.0, duration=10.0),
                SlowdownFault(servers=(0,), factor=3.0, start=1.0, duration=2.0),
            )
        )
        FaultInjector(rig.env, schedule, rig.servers, rig.network)

        def driver(env):
            yield env.timeout(1.5)  # inside both windows
            rig.send(0)

        rig.env.process(driver(rig.env))
        # After the inner window closes the outer factor alone remains.
        rig.env.run(until=5.0)
        assert rig.servers[0].speed_factor == pytest.approx(2.0)
        # After both windows the server is fully restored.
        rig.env.run(until=30.0)
        assert rig.servers[0].speed_factor == pytest.approx(1.0)
        assert rig.responses[0].request.service_time == pytest.approx(6.0)

    def test_crash_restart_conserves_queued_work(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule(
            (CrashFault(servers=(0,), start=1.0, duration=5.0),)
        )
        FaultInjector(rig.env, schedule, rig.servers, rig.network)

        def driver(env):
            yield env.timeout(2.0)  # server is down
            assert rig.servers[0].paused
            for op_id in range(4):
                rig.send(0, op_id=op_id)

        rig.env.process(driver(rig.env))
        rig.env.run(until=20.0)
        # Nothing lost: all four requests served, all after the restart.
        assert len(rig.responses) == 4
        assert rig.servers[0].crashes == 1
        assert not rig.servers[0].paused
        assert all(
            r.request.service_start_at >= 6.0 for r in rig.responses
        ), "served during the crash window"

    def test_overlapping_crashes_on_distinct_servers_conserve(self):
        rig = _Rig(n_servers=2)
        schedule = FaultSchedule(
            (
                CrashFault(servers=(0,), start=0.5, duration=3.0),
                CrashFault(servers=(1,), start=1.0, duration=3.0),
            )
        )
        FaultInjector(rig.env, schedule, rig.servers, rig.network)

        def driver(env):
            yield env.timeout(2.0)  # both down
            for op_id in range(3):
                rig.send(0, op_id=op_id)
                rig.send(1, op_id=10 + op_id)

        rig.env.process(driver(rig.env))
        rig.env.run(until=30.0)
        assert len(rig.responses) == 6
        assert all(s.crashes == 1 for s in rig.servers)

    def test_network_jitter_swaps_and_restores_latency(self):
        rig = _Rig(n_servers=1)
        rig.network.latency = ConstantLatency(50e-6)
        base = rig.network.latency
        schedule = FaultSchedule(
            (NetworkJitterFault(factor=4.0, sigma=0.2, start=1.0, duration=2.0),)
        )
        FaultInjector(rig.env, schedule, rig.servers, rig.network)

        seen = {}

        def driver(env):
            yield env.timeout(1.5)
            seen["during"] = rig.network.latency
            yield env.timeout(5.0)
            seen["after"] = rig.network.latency

        rig.env.process(driver(rig.env))
        rig.env.run(until=10.0)
        assert isinstance(seen["during"], JitteredLatency)
        assert seen["during"].mean() == pytest.approx(base.mean() * 4.0)
        assert seen["after"] is base

    def test_flash_crowd_scales_arrivals_and_reverts(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule(
            (FlashCrowdFault(multiplier=2.5, start=1.0, duration=2.0),)
        )
        injector = FaultInjector(rig.env, schedule, rig.servers, rig.network)
        seen = {}

        def driver(env):
            seen["before"] = injector.arrival_scale()
            yield env.timeout(1.5)
            seen["during"] = injector.arrival_scale()
            yield env.timeout(5.0)
            seen["after"] = injector.arrival_scale()

        rig.env.process(driver(rig.env))
        rig.env.run(until=10.0)
        assert seen["before"] == 1.0
        assert seen["during"] == pytest.approx(2.5)
        assert seen["after"] == pytest.approx(1.0)

    def test_extras_report_zero_before_first_window(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule(
            (SlowdownFault(servers=(0,), factor=2.0, start=100.0, duration=1.0),)
        )
        injector = FaultInjector(rig.env, schedule, rig.servers, rig.network)
        assert injector.extras() == {"slowdown_windows": 0.0}

    def test_out_of_range_target_rejected_at_injection(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule((CrashFault(servers=(5,)),))
        with pytest.raises(ValueError, match="valid ids"):
            FaultInjector(rig.env, schedule, rig.servers, rig.network)

    def test_overlapping_crashes_same_server_nest(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule(
            (
                CrashFault(servers=(0,), start=0.0, duration=5.0),
                CrashFault(servers=(0,), start=2.0, duration=5.0),
            )
        )
        FaultInjector(rig.env, schedule, rig.servers, rig.network)

        def driver(env):
            yield env.timeout(3.0)
            rig.send(0)

        rig.env.process(driver(rig.env))
        # The first window ends at t=5 but the second holds until t=7.
        rig.env.run(until=6.0)
        assert rig.servers[0].paused
        assert not rig.responses
        rig.env.run(until=30.0)
        assert not rig.servers[0].paused
        assert len(rig.responses) == 1
        assert rig.responses[0].request.service_start_at >= 7.0
        assert rig.servers[0].crashes == 2

    def test_jitter_without_network_rejected_at_construction(self):
        rig = _Rig(n_servers=1)
        schedule = FaultSchedule((NetworkJitterFault(start=0.5),))
        with pytest.raises(ValueError, match="need a network"):
            FaultInjector(rig.env, schedule, rig.servers, network=None)
