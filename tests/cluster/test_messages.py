"""Unit tests for wire-message invariants and derived accessors."""

import pytest

from repro.cluster import RequestMessage, TaskCompletion
from repro.workload.tasks import Operation, Task


def req():
    return RequestMessage(
        op=Operation(op_id=0, task_id=0, key=0, value_size=10),
        task_id=0,
        client_id=0,
        partition=0,
    )


class TestRequestMessage:
    def test_derived_times_require_progress(self):
        r = req()
        with pytest.raises(ValueError):
            _ = r.queue_wait
        with pytest.raises(ValueError):
            _ = r.service_time
        with pytest.raises(ValueError):
            _ = r.client_latency

    def test_derived_times(self):
        r = req()
        r.created_at = 0.0
        r.dispatched_at = 0.1
        r.enqueued_at = 0.2
        r.service_start_at = 0.5
        r.completed_at = 0.9
        assert r.queue_wait == pytest.approx(0.3)
        assert r.service_time == pytest.approx(0.4)
        assert r.client_latency == pytest.approx(0.9)

    def test_default_priority_is_orderable(self):
        assert req().priority < (1.0,)


class TestTaskCompletion:
    def test_latency(self):
        op = Operation(op_id=0, task_id=3, key=0, value_size=10)
        task = Task(task_id=3, arrival_time=1.5, client_id=0, operations=(op,))
        completion = TaskCompletion(task=task, completed_at=2.25)
        assert completion.latency == pytest.approx(0.75)
