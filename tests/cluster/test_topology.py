"""Unit tests for the cluster specification."""

import pytest

from repro.cluster import (
    ClusterSpec,
    ConstantLatency,
    JitteredLatency,
    PAPER_CLUSTER,
)
from repro.cluster.partitioner import ConsistentHashRing, RingPlacement


class TestPaperCluster:
    def test_paper_defaults(self):
        assert PAPER_CLUSTER.n_servers == 9
        assert PAPER_CLUSTER.cores_per_server == 4
        assert PAPER_CLUSTER.per_core_rate == 3500.0
        assert PAPER_CLUSTER.one_way_latency == 50e-6

    def test_capacity_arithmetic(self):
        assert PAPER_CLUSTER.server_capacity() == 14_000.0
        assert PAPER_CLUSTER.total_capacity() == 126_000.0
        caps = PAPER_CLUSTER.server_capacities()
        assert len(caps) == 9
        assert all(v == 14_000.0 for v in caps.values())


class TestFactories:
    def test_ring_placement_by_default(self):
        placement = ClusterSpec().make_placement()
        assert isinstance(placement, RingPlacement)
        placement.validate()

    def test_chash_placement(self):
        placement = ClusterSpec(placement_kind="chash").make_placement()
        assert isinstance(placement, ConsistentHashRing)
        placement.validate()

    def test_latency_model_selection(self):
        assert isinstance(ClusterSpec().make_latency_model(), ConstantLatency)
        assert isinstance(
            ClusterSpec(latency_jitter_sigma=0.3).make_latency_model(),
            JitteredLatency,
        )


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_servers=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_server=0)
        with pytest.raises(ValueError):
            ClusterSpec(replication_factor=10)  # > n_servers
        with pytest.raises(ValueError):
            ClusterSpec(per_core_rate=0.0)
        with pytest.raises(ValueError):
            ClusterSpec(one_way_latency=-1.0)
        with pytest.raises(ValueError):
            ClusterSpec(placement_kind="mesh")
