"""Unit tests for backend servers (queue and pull modes)."""

import pytest

from repro.cluster import (
    BackendServer,
    CONTROLLER_ADDRESS,
    Network,
    PullServer,
    RequestMessage,
    ResponseMessage,
    client_address,
    server_address,
)
from repro.cluster.messages import CongestionSignal
from repro.cluster.network import ConstantLatency
from repro.core.model_queue import GlobalQueue
from repro.scheduling import PriorityDiscipline, SjfDiscipline
from repro.sim import Environment, Stream, StreamFactory
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation


def unit_service_model():
    """1 byte == 1 second, no overhead, deterministic."""
    return ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="none")


def make_request(op_id=0, task_id=0, key=0, size=1, client=0, partition=0, priority=(0.0,)):
    return RequestMessage(
        op=Operation(op_id=op_id, task_id=task_id, key=key, value_size=size),
        task_id=task_id,
        client_id=client,
        partition=partition,
        priority=priority,
    )


class Harness:
    """One server, one fake client inbox."""

    def __init__(self, cores=1, discipline=None, congestion_interval=None, latency=0.0):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(latency), stream=Stream(0, "n")
        )
        self.responses = []
        self.network.register(client_address(0), self.responses.append)
        self.controller_inbox = []
        self.network.register(CONTROLLER_ADDRESS, self.controller_inbox.append)
        self.server = BackendServer(
            self.env,
            server_id=0,
            cores=cores,
            service_model=unit_service_model(),
            network=self.network,
            service_stream=Stream(1, "svc"),
            discipline=discipline,
            congestion_interval=congestion_interval,
        )

    def push(self, request):
        self.network.send(client_address(0), server_address(0), request)


class TestBackendServer:
    def test_serves_and_responds(self):
        h = Harness()
        h.push(make_request(size=2))
        h.env.run()
        assert len(h.responses) == 1
        resp = h.responses[0]
        assert isinstance(resp, ResponseMessage)
        assert resp.request.completed_at == pytest.approx(2.0)
        assert resp.request.service_time == pytest.approx(2.0)
        assert h.server.completed == 1

    def test_fifo_default_order(self):
        h = Harness()
        for i in range(3):
            h.push(make_request(op_id=i, task_id=i, size=1))
        h.env.run()
        assert [r.request.op.op_id for r in h.responses] == [0, 1, 2]

    def test_priority_discipline_orders_queue(self):
        h = Harness(discipline=PriorityDiscipline())
        # First request occupies the core; the next two queue and must be
        # served by priority, not arrival.
        h.push(make_request(op_id=0, size=5, priority=(0.0, 0.0)))
        h.push(make_request(op_id=1, size=1, priority=(9.0, 0.0)))
        h.push(make_request(op_id=2, size=1, priority=(1.0, 0.0)))
        h.env.run()
        assert [r.request.op.op_id for r in h.responses] == [0, 2, 1]

    def test_sjf_discipline_prefers_short(self):
        h = Harness(discipline=SjfDiscipline())
        big = make_request(op_id=0, size=5)
        big.expected_service = 5.0
        h.push(big)
        mid = make_request(op_id=1, size=3)
        mid.expected_service = 3.0
        h.push(mid)
        small = make_request(op_id=2, size=1)
        small.expected_service = 1.0
        h.push(small)
        h.env.run()
        # All three land in the same instant, so the whole batch is
        # SJF-ordered: smallest forecast first.
        assert [r.request.op.op_id for r in h.responses] == [2, 1, 0]

    def test_multicore_parallelism(self):
        h = Harness(cores=4)
        for i in range(4):
            h.push(make_request(op_id=i, size=3))
        h.env.run()
        assert h.env.now == pytest.approx(3.0)  # all four in parallel

    def test_feedback_piggybacked(self):
        h = Harness()
        for i in range(3):
            h.push(make_request(op_id=i, size=1))
        h.env.run()
        first = h.responses[0]
        assert first.feedback.server_id == 0
        assert first.feedback.queue_length == 2  # two still waiting
        assert first.feedback.ewma_service_time > 0

    def test_utilization_accounting(self):
        h = Harness(cores=2)
        h.push(make_request(op_id=0, size=4))
        h.env.run()
        assert h.server.utilization == pytest.approx(0.5)  # 1 of 2 cores busy

    def test_rejects_unknown_message(self):
        h = Harness()
        h.network.send(client_address(0), server_address(0), "garbage")
        with pytest.raises(TypeError):
            h.env.run()

    def test_congestion_signal_on_overload(self):
        h = Harness(cores=1, congestion_interval=0.5)
        # Offered load far above 1 req/s capacity (size=1 => 1s service).
        for i in range(20):
            h.push(make_request(op_id=i, size=1))
        h.env.run(until=2.0)
        assert h.server.congestion_signals_sent > 0
        assert any(isinstance(m, CongestionSignal) for m in h.controller_inbox)

    def test_no_congestion_when_idle(self):
        h = Harness(cores=1, congestion_interval=0.5)
        h.push(make_request(size=1))
        h.env.run(until=5.0)
        assert h.server.congestion_signals_sent == 0

    def test_queue_wait_accounting(self):
        h = Harness()
        h.push(make_request(op_id=0, size=2))
        h.push(make_request(op_id=1, size=1))
        h.env.run()
        second = next(r.request for r in h.responses if r.request.op.op_id == 1)
        assert second.queue_wait == pytest.approx(2.0)


class TestPullServer:
    def make(self, partitions=(0,), cores=1):
        env = Environment()
        network = Network(env, latency=ConstantLatency(0.0), stream=Stream(0, "n"))
        responses = []
        network.register(client_address(0), responses.append)
        gq = GlobalQueue(env, latency=ConstantLatency(0.0), stream=Stream(1, "gq"))
        server = PullServer(
            env,
            server_id=0,
            cores=cores,
            service_model=unit_service_model(),
            network=network,
            service_stream=Stream(2, "svc"),
            global_queue=gq.store,
            partitions=partitions,
        )
        return env, gq, server, responses

    def test_pulls_only_own_partitions(self):
        env, gq, server, responses = self.make(partitions=(0,))
        gq.submit(make_request(op_id=0, partition=1))  # foreign partition
        gq.submit(make_request(op_id=1, partition=0))
        env.run(until=5.0)
        assert [r.request.op.op_id for r in responses] == [1]
        assert len(gq) == 1  # foreign request still queued

    def test_pulls_in_priority_order(self):
        env, gq, server, responses = self.make(partitions=(0,), cores=1)
        gq.submit(make_request(op_id=0, partition=0, priority=(5.0,)))
        gq.submit(make_request(op_id=1, partition=0, priority=(1.0,)))
        gq.submit(make_request(op_id=2, partition=0, priority=(3.0,)))
        env.run()
        assert [r.request.op.op_id for r in responses] == [1, 2, 0]

    def test_sets_server_id_on_pull(self):
        env, gq, server, responses = self.make()
        gq.submit(make_request(partition=0))
        env.run()
        assert responses[0].request.server_id == 0

    def test_rejects_pushed_messages(self):
        env, gq, server, responses = self.make()
        net = server.network
        net.send(client_address(0), server_address(0), make_request())
        with pytest.raises(TypeError):
            env.run()

    def test_requires_partitions(self):
        env = Environment()
        network = Network(env, stream=Stream(0, "n"))
        gq = GlobalQueue(env, latency=ConstantLatency(0.0), stream=Stream(1, "gq"))
        with pytest.raises(ValueError):
            PullServer(
                env,
                server_id=0,
                cores=1,
                service_model=unit_service_model(),
                network=network,
                service_stream=Stream(2, "s"),
                global_queue=gq.store,
                partitions=(),
            )
