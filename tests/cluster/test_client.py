"""Unit tests for the client: intake, accounting, completion detection."""

import pytest

from repro.baselines import ObliviousStrategy, RoundRobinSelector
from repro.cluster import (
    BackendServer,
    Client,
    Network,
    RingPlacement,
)
from repro.cluster.network import ConstantLatency
from repro.metrics import ExactSample
from repro.sim import Environment, Stream, StreamFactory
from repro.workload import ServiceTimeModel
from repro.workload.tasks import Operation, Task


def make_task(task_id, keys, arrival=0.0, client=0, size=1):
    ops = tuple(
        Operation(op_id=task_id * 100 + i, task_id=task_id, key=k, value_size=size)
        for i, k in enumerate(keys)
    )
    return Task(task_id=task_id, arrival_time=arrival, client_id=client, operations=ops)


class Rig:
    def __init__(self, n_servers=3, cores=1, latency=0.0):
        self.env = Environment()
        self.network = Network(
            self.env, latency=ConstantLatency(latency), stream=Stream(0, "n")
        )
        self.placement = RingPlacement(n_servers=n_servers, replication_factor=1)
        self.model = ServiceTimeModel(overhead=0.0, bandwidth=1.0, noise="none")
        self.servers = [
            BackendServer(
                self.env,
                server_id=s,
                cores=cores,
                service_model=self.model,
                network=self.network,
                service_stream=Stream(s + 1, f"svc{s}"),
            )
            for s in range(n_servers)
        ]
        self.tasks = ExactSample()
        self.requests = ExactSample()
        self.completions = []
        self.client = Client(
            self.env,
            client_id=0,
            network=self.network,
            strategy=ObliviousStrategy(self.placement, RoundRobinSelector(), self.model),
            task_recorder=self.tasks,
            request_recorder=self.requests,
            on_complete=self.completions.append,
        )


class TestClient:
    def test_task_completes_when_all_responses_arrive(self):
        rig = Rig()
        rig.client.submit(make_task(0, keys=[0, 1, 2]))
        rig.env.run()
        assert rig.client.tasks_completed == 1
        assert rig.client.pending_tasks == 0
        assert len(rig.completions) == 1

    def test_task_latency_is_last_response(self):
        rig = Rig(n_servers=1)
        # Three ops serialize on one single-core server: 3 seconds total.
        rig.client.submit(make_task(0, keys=[0, 1, 2], size=1))
        rig.env.run()
        assert rig.tasks.values()[0] == pytest.approx(3.0)

    def test_request_latencies_recorded_per_op(self):
        rig = Rig()
        rig.client.submit(make_task(0, keys=[0, 1, 2]))
        rig.env.run()
        assert rig.requests.count == 3

    def test_duplicate_submit_rejected(self):
        rig = Rig()
        rig.client.submit(make_task(0, keys=[0]))
        with pytest.raises(ValueError):
            rig.client.submit(make_task(0, keys=[1]))

    def test_network_latency_included_in_task_latency(self):
        rig = Rig(n_servers=1, latency=0.5)
        rig.client.submit(make_task(0, keys=[0], size=2))
        rig.env.run()
        # 0.5 out + 2.0 service + 0.5 back.
        assert rig.tasks.values()[0] == pytest.approx(3.0)

    def test_counters(self):
        rig = Rig()
        for i in range(3):
            rig.client.submit(make_task(i, keys=[i]))
        rig.env.run()
        assert rig.client.tasks_submitted == 3
        assert rig.client.tasks_completed == 3

    def test_unexpected_control_message_raises(self):
        rig = Rig()
        rig.network.send("x", ("client", 0), object())
        with pytest.raises(TypeError):
            rig.env.run()
