"""Unit tests for the live wire protocol (framing, limits, decoding)."""

import asyncio
import struct

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    priority_from_wire,
    priority_to_wire,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


def reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class TestFraming:
    def test_round_trip(self):
        frame = {"t": "op", "rid": 7, "prio": [1.5, 2.0], "key": 42}

        async def check():
            return await read_frame(reader_with(encode_frame(frame)))

        assert run(check()) == frame

    def test_multiple_frames_in_sequence(self):
        frames = [{"t": "a", "i": i} for i in range(3)]
        blob = b"".join(encode_frame(f) for f in frames)

        async def check():
            reader = reader_with(blob)
            out = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return out
                out.append(frame)

        assert run(check()) == frames

    def test_clean_eof_returns_none(self):
        async def check():
            return await read_frame(reader_with(b""))

        assert run(check()) is None

    def test_truncated_header_raises(self):
        async def check():
            await read_frame(reader_with(b"\x00\x00"))

        with pytest.raises(ProtocolError, match="mid-header"):
            run(check())

    def test_truncated_payload_raises(self):
        data = encode_frame({"t": "x"})[:-2]

        async def check():
            await read_frame(reader_with(data))

        with pytest.raises(ProtocolError, match="mid-frame"):
            run(check())

    def test_oversized_declared_length_raises(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)

        async def check():
            await read_frame(reader_with(header + b"x"))

        with pytest.raises(ProtocolError, match="exceeds the cap"):
            run(check())

    def test_non_json_payload_raises(self):
        data = struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"

        async def check():
            await read_frame(reader_with(data))

        with pytest.raises(ProtocolError, match="bad frame payload"):
            run(check())

    def test_untyped_frame_raises(self):
        data = struct.pack(">I", 2) + b"{}"

        async def check():
            await read_frame(reader_with(data))

        with pytest.raises(ProtocolError, match="not a typed object"):
            run(check())


class TestPriorities:
    def test_round_trip(self):
        priority = (1.0, 2.5, 3.0)
        assert priority_from_wire(priority_to_wire(priority)) == priority

    def test_ordering_survives_wire(self):
        a, b = (1.0, 9.0), (2.0, 0.0)
        assert (a < b) == (
            priority_from_wire(priority_to_wire(a))
            < priority_from_wire(priority_to_wire(b))
        )

    @pytest.mark.parametrize("bad", ["high", 3, [1, "x"], [True], None])
    def test_bad_priorities_rejected(self, bad):
        with pytest.raises(ProtocolError, match="bad priority"):
            priority_from_wire(bad)
