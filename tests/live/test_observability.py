"""Live-realm observability: metrics admin frames, the HTTP exporter,
and the in-run SLO remediation loop over the wire protocol."""

import asyncio

import pytest

from repro.loadgen import run_live
from repro.loadgen.transport import LiveTransport
from repro.scenarios import get_scenario
from repro.serve import LiveServer


TIME_SCALE = 2.0


def steady_config(**overrides):
    return get_scenario("steady-state").build_config(
        strategy="unifincr-credits", n_tasks=120, **overrides
    )


async def http_get(host, port, path="/metrics"):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode("ascii"), body.decode("utf-8")


class TestMetricsAdminFrame:
    def test_fetch_metrics_returns_prometheus_text(self):
        async def scenario():
            config = steady_config()
            server = LiveServer.from_config(
                config, time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                transport = await LiveTransport.connect(
                    [(server.host, server.port)]
                )
                try:
                    return await transport.fetch_metrics()
                finally:
                    await transport.close()
            finally:
                await server.stop()

        text = asyncio.run(scenario())
        assert "repro_serve_connections" in text
        assert 'repro_serve_worker_queued{worker="0"}' in text
        # One gauge line per worker of the paper cluster.
        assert text.count("repro_serve_worker_completed{") == 9
        assert text.endswith("\n")


class TestHttpExporter:
    def test_scrape_mid_run(self):
        async def scenario():
            config = steady_config()
            server = LiveServer.from_config(
                config, time_scale=TIME_SCALE, port=0, metrics_port=0
            )
            await server.start()
            assert server.metrics_port not in (None, 0)
            try:
                run = asyncio.ensure_future(
                    run_live(
                        config, seed=1, host=server.host, port=server.port
                    )
                )
                await asyncio.sleep(0.1)  # let the run get going
                head, body = await http_get(server.host, server.metrics_port)
                result = await run
            finally:
                await server.stop()
            return head, body, result

        head, body, result = asyncio.run(scenario())
        assert head.startswith("HTTP/1.1 200 OK")
        assert "text/plain" in head
        assert "repro_serve_uptime_model_s" in body
        assert "repro_serve_worker_busy_time_s" in body
        assert result.tasks_completed == 120

    def test_no_metrics_port_means_no_exporter(self):
        async def scenario():
            server = LiveServer.from_config(
                steady_config(), time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                return server.metrics_port
            finally:
                await server.stop()

        assert asyncio.run(scenario()) is None


class TestLiveRemediation:
    def run_mode(self, mode, n_tasks=300):
        async def scenario():
            config = get_scenario("steady-state").build_config(
                strategy="c3",
                n_tasks=n_tasks,
                remediation=mode,
                slo_p99_ms=10.0,
            )
            server = LiveServer.from_config(
                config, time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                return await run_live(
                    config, seed=1, host=server.host, port=server.port
                )
            finally:
                await server.stop()

        return asyncio.run(scenario())

    def test_monitor_mode_streams_without_acting(self):
        result = self.run_mode("monitor")
        assert result.tasks_completed == 300
        assert result.extras["bus_snapshots"] > 0
        assert result.extras["remediation_actions"] == 0.0
        assert "slo_breach_windows" in result.extras
        assert "slo_windows_evaluated" in result.extras

    def test_slo_mode_runs_the_full_loop(self):
        # At this scale wall-clock noise decides whether the detector
        # fires, so assert the mechanism (driver ran, counters present,
        # run unharmed), not a breach-count inequality -- the sim realm
        # and the CI smoke own the deterministic comparison.
        result = self.run_mode("slo")
        assert result.tasks_completed == 300
        assert result.extras["bus_snapshots"] > 0
        assert result.extras["remediation_actions"] >= 0.0
        assert result.extras["live_requests_rejected"] == 0.0

    def test_off_mode_adds_no_metrics_extras(self):
        result = self.run_mode("off", n_tasks=120)
        assert result.tasks_completed == 120
        assert "bus_snapshots" not in result.extras
