"""Version interop and the multi-process cluster path.

The binary codec is an *optional* negotiation: a v1-only client speaking
plain JSON frames must keep working against a v2-capable server, and a
capped client must pin the whole connection to JSON.  The supervisor
tests fork real server processes and drive them through the pooled
transport and the firehose -- the smallest end-to-end exercise of every
tentpole layer (fork, ephemeral ports, worker sharding, negotiation,
pipelining).
"""

import asyncio

import pytest

from repro.cluster.addresses import derive_endpoints, worker_groups
from repro.loadgen import run_firehose, run_live
from repro.scenarios import get_scenario
from repro.serve import LiveServer, ServeSupervisor
from repro.serve.protocol import encode_frame, read_frame

TIME_SCALE = 2.0


def steady_config(n_tasks=120, **overrides):
    return get_scenario("steady-state").build_config(
        strategy="unifincr-credits", n_tasks=n_tasks, **overrides
    )


class TestWorkerGroups:
    def test_even_split(self):
        assert worker_groups(9, 3) == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_remainder_goes_to_the_first_groups(self):
        assert worker_groups(9, 2) == [[0, 1, 2, 3, 4], [5, 6, 7, 8]]
        assert worker_groups(5, 4) == [[0, 1], [2], [3], [4]]

    def test_groups_partition_the_workers(self):
        for n_servers in (1, 2, 7, 9, 16):
            for procs in range(1, n_servers + 1):
                groups = worker_groups(n_servers, procs)
                assert len(groups) == procs
                flat = [w for group in groups for w in group]
                assert flat == list(range(n_servers))
                sizes = {len(g) for g in groups}
                assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("n_servers, procs", [(3, 4), (0, 1), (3, 0), (1, -1)])
    def test_bad_shapes_rejected(self, n_servers, procs):
        with pytest.raises(ValueError):
            worker_groups(n_servers, procs)

    def test_derive_endpoints(self):
        assert derive_endpoints("h", 7411, 3) == [
            ("h", 7411),
            ("h", 7412),
            ("h", 7413),
        ]
        # Port 0 means "every process picks an ephemeral port".
        assert derive_endpoints("h", 0, 2) == [("h", 0), ("h", 0)]
        with pytest.raises(ValueError):
            derive_endpoints("h", 7411, 0)


class TestVersionInterop:
    def test_v1_only_client_against_a_v2_server(self):
        """A hand-rolled JSON client (no ``max_proto``) round-trips an op:
        the server must never switch such a connection off v1."""

        async def scenario():
            config = steady_config(n_tasks=10)
            server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(encode_frame({"t": "hello", "proto": 1}))
                await writer.drain()
                ack = await asyncio.wait_for(read_frame(reader), timeout=5)
                writer.write(
                    encode_frame(
                        {
                            "t": "op",
                            "rid": 7,
                            "server": 0,
                            "key": 42,
                            "size": 512,
                            "prio": [1.0],
                        }
                    )
                )
                await writer.drain()
                while True:
                    frame = await asyncio.wait_for(read_frame(reader), timeout=10)
                    if frame["t"] == "res":
                        break
                writer.close()
                return ack, frame
            finally:
                await server.stop()

        ack, res = asyncio.run(scenario())
        assert ack["t"] == "hello-ack"
        assert ack["proto"] == 1  # negotiated down to the client's max
        assert res["rid"] == 7 and res["server"] == 0
        assert {"q", "s", "ew"} <= set(res["fb"])

    @pytest.mark.parametrize("protocol, negotiated", [(1, 1.0), (2, 2.0)])
    def test_driver_negotiation_is_capped_by_the_client(self, protocol, negotiated):
        """The full driver stack works identically on both codecs; the
        negotiated version is recorded in the run extras."""

        async def scenario():
            config = steady_config(n_tasks=120)
            server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
            await server.start()
            try:
                return await run_live(
                    config,
                    host=server.host,
                    port=server.port,
                    protocol=protocol,
                )
            finally:
                await server.stop()

        result = asyncio.run(scenario())
        assert result.tasks_completed == 120
        assert result.extras["live_protocol"] == negotiated


class TestMultiProcessCluster:
    def test_supervisor_rejects_too_many_procs(self):
        config = steady_config()
        with pytest.raises(ValueError, match="cannot split"):
            ServeSupervisor(config, procs=config.cluster.n_servers + 1)

    def test_two_process_cluster_end_to_end(self):
        """Fork a 2-process cluster, then drive it through both client
        paths: the scheduling driver (pooled, binary) and the firehose."""
        config = steady_config(n_tasks=150)
        supervisor = ServeSupervisor(
            config, procs=2, time_scale=TIME_SCALE, base_port=0
        )
        endpoints = supervisor.start()
        try:
            assert len(endpoints) == 2
            assert supervisor.alive
            groups = supervisor.groups
            assert [w for g in groups for w in g] == list(
                range(config.cluster.n_servers)
            )

            result = asyncio.run(
                run_live(config, endpoints=endpoints, pool=2, protocol=2)
            )
            assert result.tasks_completed == 150
            assert result.extras["live_protocol"] == 2.0
            assert result.extras["live_links"] == 4.0  # 2 endpoints x pool 2

            fire = asyncio.run(
                run_firehose(
                    endpoints, multigets=400, fanout=2, window=64, pool=2
                )
            )
            assert fire.multigets == 400
            assert fire.protocol == 2
            assert 0 < fire.p99_ms < float("inf")
            # Ops route by worker id; with sharded workers both server
            # processes must have answered.
            assert fire.server_io.get("completed", 0) >= 400 * 2
        finally:
            supervisor.stop()
        assert not supervisor.alive

    def test_single_endpoint_of_a_sharded_cluster_is_rejected(self):
        """Connecting to only one process of a 2-process cluster cannot
        cover the worker space; the transport must refuse loudly."""
        from repro.loadgen import LiveTransportError

        config = steady_config(n_tasks=50)
        supervisor = ServeSupervisor(
            config, procs=2, time_scale=TIME_SCALE, base_port=0
        )
        endpoints = supervisor.start()
        try:
            with pytest.raises(LiveTransportError, match="worker"):
                asyncio.run(run_live(config, endpoints=endpoints[:1]))
        finally:
            supervisor.stop()
