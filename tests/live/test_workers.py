"""Unit tests for live workers: ordering, crash windows, queue bounds."""

import asyncio

import pytest

from repro.core.clock import WallClock
from repro.serve.workers import LiveJob, LiveWorker, QueueFullError
from repro.sim.rng import Stream
from repro.workload.calibration import ServiceTimeModel


def fast_model() -> ServiceTimeModel:
    # ~0.1 ms deterministic service; fast enough for wall-clock tests.
    return ServiceTimeModel(overhead=1e-4, bandwidth=1e12, noise="none")


def make_worker(**kwargs):
    worker = LiveWorker(
        clock=WallClock(scale=1.0),
        worker_id=0,
        cores=kwargs.pop("cores", 1),
        service_model=fast_model(),
        service_stream=Stream(1, "svc"),
        **kwargs,
    )
    return worker


def job(rid, priority=(0.0,), completions=None):
    def respond(worker, j, queue_wait, service):
        if completions is not None:
            completions.append(j.rid)

    return LiveJob(rid=rid, key=1, value_size=100, priority=priority, respond=respond)


class TestOrdering:
    def test_priority_order_drains_smallest_first(self):
        async def scenario():
            worker = make_worker()
            worker.pause()  # hold the core so ordering is decided by the heap
            completions = []
            worker.submit(job(1, (5.0,), completions))
            worker.submit(job(2, (1.0,), completions))
            worker.submit(job(3, (3.0,), completions))
            worker.resume()
            while len(completions) < 3:
                await asyncio.sleep(0.005)
            worker.shutdown()
            return completions

        assert asyncio.run(scenario()) == [2, 3, 1]

    def test_equal_priorities_are_fifo(self):
        async def scenario():
            worker = make_worker()
            worker.pause()
            completions = []
            for rid in (1, 2, 3):
                worker.submit(job(rid, (0.0,), completions))
            worker.resume()
            while len(completions) < 3:
                await asyncio.sleep(0.005)
            worker.shutdown()
            return completions

        assert asyncio.run(scenario()) == [1, 2, 3]


class TestCrashWindows:
    def test_pause_retains_queue_and_resume_serves(self):
        async def scenario():
            worker = make_worker()
            completions = []
            worker.pause()
            worker.submit(job(1, completions=completions))
            await asyncio.sleep(0.02)
            assert completions == []  # crashed: nothing served
            worker.resume()
            while not completions:
                await asyncio.sleep(0.005)
            worker.shutdown()
            return completions, worker.crashes

        completions, crashes = asyncio.run(scenario())
        assert completions == [1]
        assert crashes == 1

    def test_nested_crash_windows_must_all_close(self):
        async def scenario():
            worker = make_worker()
            completions = []
            worker.pause()
            worker.pause()
            worker.submit(job(1, completions=completions))
            worker.resume()
            await asyncio.sleep(0.02)
            still_down = not completions
            worker.resume()
            while not completions:
                await asyncio.sleep(0.005)
            worker.shutdown()
            return still_down

        assert asyncio.run(scenario()) is True


class TestBoundsAndThrottle:
    def test_queue_bound_rejects(self):
        async def scenario():
            worker = make_worker(max_queue=2)
            worker.pause()
            worker.submit(job(1))
            worker.submit(job(2))
            with pytest.raises(QueueFullError):
                worker.submit(job(3))
            rejected = worker.rejected
            worker.resume()
            worker.shutdown()
            return rejected

        assert asyncio.run(scenario()) == 1

    def test_throttle_restore_stack(self):
        async def scenario():
            worker = make_worker()
            worker.throttle(4.0)
            worker.throttle(2.0)
            assert worker.speed_factor == pytest.approx(8.0)
            worker.restore(4.0)
            assert worker.speed_factor == pytest.approx(2.0)
            worker.restore(2.0)
            worker.shutdown()
            return worker.speed_factor

        assert asyncio.run(scenario()) == pytest.approx(1.0)

    def test_feedback_reports_queue_state(self):
        async def scenario():
            worker = make_worker()
            worker.pause()
            worker.submit(job(1))
            worker.submit(job(2))
            feedback = worker.feedback()
            worker.resume()
            worker.shutdown()
            return feedback

        feedback = asyncio.run(scenario())
        assert feedback["q"] == 2
        assert feedback["s"] == 0
        assert feedback["ew"] == 0.0
