"""Live-realm tracing: wire context propagation, reconstructed span
trees, and the client-side metrics bus streamed to the cluster.

The acceptance bounds here are looser than the sim's (wall-clock noise),
but the structural contracts are exact: critical-path segments sum to
the measured latency within 1%, every sampled request's context reaches
the server (``traced_ops``), and a ``--procs 2`` cluster merges the load
generator's client-side snapshots for ``repro watch``.
"""

import asyncio
import math

import pytest

from repro.cli import _combine_client_bus
from repro.loadgen import run_live
from repro.loadgen.transport import LiveTransport
from repro.scenarios import get_scenario
from repro.serve import LiveServer
from repro.serve.supervisor import ServeSupervisor

TIME_SCALE = 2.0


def steady_config(n_tasks=120, **overrides):
    return get_scenario("steady-state").build_config(
        strategy="unifincr-credits", n_tasks=n_tasks, **overrides
    )


def run_against_server(config, protocol=2):
    async def scenario():
        server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
        await server.start()
        try:
            return await run_live(
                config, seed=1, host=server.host, port=server.port,
                protocol=protocol,
            )
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestFeatureAdvertisement:
    def test_hello_ack_advertises_the_new_capabilities(self):
        async def scenario():
            server = LiveServer.from_config(
                steady_config(), time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                transport = await LiveTransport.connect(
                    [(server.host, server.port)]
                )
                try:
                    return transport.features
                finally:
                    await transport.close()
            finally:
                await server.stop()

        features = asyncio.run(scenario())
        assert {"trace-context", "bus-report", "client-bus"} <= features


class TestLiveSpanTrees:
    @pytest.mark.parametrize("protocol", [1, 2])
    def test_traces_reconstruct_and_sum_within_one_percent(self, protocol):
        result = run_against_server(
            steady_config(trace_sample=1.0), protocol=protocol
        )
        assert result.tasks_completed == 120
        assert result.traces
        for trace in result.traces:
            total = sum(v for _, v, _ in trace.critical_path())
            assert math.isclose(total, trace.latency, rel_tol=0.01)
            # The serving realm measured these segments itself; they must
            # be present and non-negative in the reconstruction.
            for span in trace.spans:
                segments = span.segments()
                assert segments["queue_wait"] >= 0.0
                assert segments["service"] >= 0.0

    def test_wire_context_reaches_the_server(self):
        result = run_against_server(steady_config(trace_sample=1.0))
        assert result.extras["trace_sampled"] > 0
        # Every span the client recorded traveled as a traced op frame.
        assert result.extras["live_traced_ops"] == result.extras["trace_spans"]

    def test_sampling_off_sends_no_context(self):
        result = run_against_server(steady_config())
        assert result.traces is None
        assert "live_traced_ops" not in result.extras
        assert not any(k.startswith("trace_") for k in result.extras)


class TestClientBusAdmin:
    def snapshot(self, seq, completed=10):
        return {
            "time": 1.0, "seq": seq, "window": 0.1, "window_count": 4,
            "completed": completed, "latency_p50_ms": 2.0,
            "latency_p99_ms": 9.0, "arrival_rate": 40.0,
            "served_rate": 40.0, "queue_depths": [0.0, 1.0],
        }

    def test_report_then_fetch_roundtrips(self):
        async def scenario():
            server = LiveServer.from_config(
                steady_config(), time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                transport = await LiveTransport.connect(
                    [(server.host, server.port)]
                )
                try:
                    transport.report_bus("loadgen-1", self.snapshot(seq=5))
                    transport.report_bus("loadgen-1", self.snapshot(seq=7))
                    # A stale generation must not clobber the newest.
                    transport.report_bus("loadgen-1", self.snapshot(seq=6))
                    transport.report_bus("loadgen-2", self.snapshot(seq=1))
                    return await asyncio.wait_for(
                        transport.fetch_client_bus(), timeout=10
                    )
                finally:
                    await transport.close()
            finally:
                await server.stop()

        merged = asyncio.run(scenario())
        assert set(merged) == {"loadgen-1", "loadgen-2"}
        assert merged["loadgen-1"]["seq"] == 7
        assert merged["loadgen-2"]["seq"] == 1

    def test_loadgen_streams_its_bus_to_a_two_process_cluster(self):
        """The ROADMAP open end: a --procs N cluster's servers hold the
        client-side windowed view, merged across endpoints by seq."""
        config = steady_config(
            n_tasks=150, remediation="monitor", slo_p99_ms=50.0
        )
        supervisor = ServeSupervisor(
            config, procs=2, time_scale=TIME_SCALE, base_port=0
        )
        endpoints = supervisor.start()
        try:
            result = asyncio.run(
                run_live(config, endpoints=endpoints, protocol=2)
            )
            assert result.tasks_completed == 150

            async def fetch():
                transport = await LiveTransport.connect(endpoints)
                try:
                    return await asyncio.wait_for(
                        transport.fetch_client_bus(), timeout=10
                    )
                finally:
                    await transport.close()

            merged = asyncio.run(fetch())
        finally:
            supervisor.stop()
        assert len(merged) == 1  # one loadgen process reported
        (snapshot,) = merged.values()
        assert snapshot["completed"] > 0
        assert snapshot["seq"] >= 1
        combined = _combine_client_bus(merged)
        assert combined["completed"] == snapshot["completed"]
        assert combined["latency_p99_ms"] == snapshot["latency_p99_ms"]


class TestServerMetricsPage:
    def test_metrics_page_is_well_formed_and_carries_client_bus(self):
        from tests.metrics.test_bus import validate_exposition

        async def scenario():
            server = LiveServer.from_config(
                steady_config(), time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                transport = await LiveTransport.connect(
                    [(server.host, server.port)]
                )
                try:
                    transport.report_bus("loadgen-9", {
                        "time": 1.0, "seq": 2, "window": 0.1,
                        "window_count": 4, "completed": 33,
                        "latency_p50_ms": 2.0, "latency_p99_ms": 9.5,
                        "arrival_rate": 40.0, "served_rate": 40.0,
                        "queue_depths": [0.0],
                    })
                    return await asyncio.wait_for(
                        transport.fetch_metrics(), timeout=10
                    )
                finally:
                    await transport.close()
            finally:
                await server.stop()

        text = asyncio.run(scenario())
        validate_exposition(text)
        assert "repro_serve_traced_ops 0" in text
        assert 'repro_client_latency_p99_ms{reporter="loadgen-9"} 9.5' in text
        assert 'repro_client_completed{reporter="loadgen-9"} 33' in text


class TestCombineClientBus:
    def test_empty_is_none(self):
        assert _combine_client_bus({}) is None

    def test_counts_add_and_percentiles_merge_conservatively(self):
        merged = _combine_client_bus({
            "a": {
                "window_count": 30, "completed": 100, "arrival_rate": 10.0,
                "served_rate": 9.0, "latency_p50_ms": 2.0,
                "latency_p99_ms": 8.0,
            },
            "b": {
                "window_count": 10, "completed": 50, "arrival_rate": 5.0,
                "served_rate": 5.0, "latency_p50_ms": 6.0,
                "latency_p99_ms": 20.0,
            },
        })
        assert merged["reporters"] == ["a", "b"]
        assert merged["window_count"] == 40
        assert merged["completed"] == 150
        assert merged["arrival_rate"] == pytest.approx(15.0)
        assert merged["served_rate"] == pytest.approx(14.0)
        assert merged["latency_p50_ms"] == pytest.approx(3.0)  # weighted
        assert merged["latency_p99_ms"] == pytest.approx(20.0)  # max
