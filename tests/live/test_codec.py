"""Property tests of the v2 binary codec: round trips and hostile bytes.

Hypothesis drives full-range field values through every frame layout --
encode then decode must reproduce the frame exactly, for the binary
codec, the JSON codec, and the general ``encode(dict)`` entry against
the type-specific fast paths (``encode_op``/``encode_res``), which
must emit identical bytes.  The adversarial half slices, flips and
fabricates payloads: every corruption must surface as a
:class:`ProtocolError` carrying the absolute stream offset, never an
exception from ``struct`` or ``json`` internals.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.codec import (
    BINARY_CODEC,
    JSON_CODEC,
    TAG_CONGESTION,
    TAG_JSON,
    TAG_OP,
    TAG_OP_TRACE,
    TAG_RES,
    codec_for,
)
from repro.serve.protocol import ProtocolError, priority_from_wire

_LENGTH = struct.Struct(">I")

rids = st.integers(min_value=0, max_value=(1 << 32) - 1)
servers = st.integers(min_value=0, max_value=(1 << 16) - 1)
keys = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
sizes = st.integers(min_value=0, max_value=(1 << 32) - 1)
# Priorities are compared (heap ordering), so NaN is out of contract.
floats = st.floats(allow_nan=False, width=64)
priorities = st.lists(floats, min_size=0, max_size=255)
counts = st.integers(min_value=0, max_value=(1 << 32) - 1)
in_service = st.integers(min_value=0, max_value=(1 << 16) - 1)


def payload_of(wire: bytes) -> bytes:
    """Strip the length prefix, validating it against the actual size."""
    (length,) = _LENGTH.unpack_from(wire, 0)
    assert length == len(wire) - 4
    return wire[4:]


def decode(codec, wire: bytes, at: int = 0):
    return codec.decode(wire, 4, len(wire), at)


class TestRoundTrip:
    @given(rid=rids, server=servers, key=keys, size=sizes, prio=priorities)
    def test_op(self, rid, server, key, size, prio):
        frame = {
            "t": "op",
            "rid": rid,
            "server": server,
            "key": key,
            "size": size,
            "prio": prio,
        }
        wire = BINARY_CODEC.encode(frame)
        assert wire == BINARY_CODEC.encode_op(rid, server, key, size, prio)
        assert payload_of(wire)[0] == TAG_OP
        back = decode(BINARY_CODEC, wire)
        assert back == {**frame, "prio": tuple(prio)}
        # The decoded priority feeds straight into the worker heap.
        assert priority_from_wire(back["prio"]) == tuple(prio)

    @given(
        rid=rids,
        server=servers,
        queue_wait=floats,
        service=floats,
        q=counts,
        s=in_service,
        ew=floats,
    )
    def test_res(self, rid, server, queue_wait, service, q, s, ew):
        frame = {
            "t": "res",
            "rid": rid,
            "server": server,
            "queue_wait": queue_wait,
            "service": service,
            "fb": {"q": q, "s": s, "ew": ew},
        }
        wire = BINARY_CODEC.encode(frame)
        assert wire == BINARY_CODEC.encode_res(
            rid, server, queue_wait, service, q, s, ew
        )
        assert payload_of(wire)[0] == TAG_RES
        assert decode(BINARY_CODEC, wire) == frame

    @given(server=servers, ratio=floats)
    def test_congestion(self, server, ratio):
        frame = {"t": "congestion", "server": server, "ratio": ratio}
        wire = BINARY_CODEC.encode(frame)
        assert payload_of(wire)[0] == TAG_CONGESTION
        assert decode(BINARY_CODEC, wire) == frame

    @given(
        extra=st.dictionaries(
            st.text(min_size=1, max_size=8).filter(lambda k: k != "t"),
            st.one_of(st.integers(), floats, st.text(max_size=16), st.none()),
            max_size=4,
        )
    )
    def test_control_plane_stays_json(self, extra):
        """Anything that is not op/res/congestion rides behind TAG_JSON."""
        frame = {"t": "hello-ack", **extra}
        wire = BINARY_CODEC.encode(frame)
        payload = payload_of(wire)
        assert payload[0] == TAG_JSON
        assert json.loads(payload[1:]) == frame
        assert decode(BINARY_CODEC, wire) == frame

    @given(rid=rids, server=servers, key=keys, size=sizes, prio=priorities)
    def test_codecs_decode_to_the_same_shape(self, rid, server, key, size, prio):
        """Everything above the codec is version-agnostic because both
        codecs produce the same dict (modulo the validated prio type)."""
        frame = {
            "t": "op",
            "rid": rid,
            "server": server,
            "key": key,
            "size": size,
            "prio": list(prio),
        }
        v1 = decode(JSON_CODEC, JSON_CODEC.encode(frame))
        v2 = decode(BINARY_CODEC, BINARY_CODEC.encode(frame))
        assert priority_from_wire(v1.pop("prio")) == priority_from_wire(
            v2.pop("prio")
        )
        assert v1 == v2


class TestEncodeBounds:
    """Out-of-layout values fail as ProtocolError, not struct.error."""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(rid=1 << 32), "rid"),
            (dict(rid=-1), "rid"),
            (dict(server=1 << 16), "server"),
            (dict(key=1 << 63), "key"),
            (dict(size=-5), "size"),
            (dict(prio=[0.0] * 256), "priority"),
        ],
    )
    def test_op_bounds(self, kwargs, match):
        fields = dict(rid=1, server=2, key=3, size=4, prio=[0.5])
        fields.update(kwargs)
        with pytest.raises(ProtocolError, match=match):
            BINARY_CODEC.encode_op(
                fields["rid"],
                fields["server"],
                fields["key"],
                fields["size"],
                fields["prio"],
            )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(rid=1 << 32), "rid"),
            (dict(server=-1), "server"),
            (dict(q=1 << 32), "queue length"),
            (dict(s=1 << 16), "in_service"),
        ],
    )
    def test_res_bounds(self, kwargs, match):
        fields = dict(rid=1, server=2, queue_wait=0.1, service=0.2, q=3, s=4, ew=0.5)
        fields.update(kwargs)
        with pytest.raises(ProtocolError, match=match):
            BINARY_CODEC.encode_res(
                fields["rid"],
                fields["server"],
                fields["queue_wait"],
                fields["service"],
                fields["q"],
                fields["s"],
                fields["ew"],
            )

    def test_congestion_bounds(self):
        with pytest.raises(ProtocolError, match="server"):
            BINARY_CODEC.encode({"t": "congestion", "server": 1 << 16, "ratio": 1.0})


@st.composite
def valid_wire(draw):
    """An encoded data-plane frame (length prefix included)."""
    kind = draw(st.sampled_from(("op", "res", "congestion")))
    if kind == "op":
        frame = {
            "t": "op",
            "rid": draw(rids),
            "server": draw(servers),
            "key": draw(keys),
            "size": draw(sizes),
            "prio": draw(st.lists(floats, max_size=4)),
        }
    elif kind == "res":
        frame = {
            "t": "res",
            "rid": draw(rids),
            "server": draw(servers),
            "queue_wait": draw(floats),
            "service": draw(floats),
            "fb": {"q": draw(counts), "s": draw(in_service), "ew": draw(floats)},
        }
    else:
        frame = {"t": "congestion", "server": draw(servers), "ratio": draw(floats)}
    return BINARY_CODEC.encode(frame)


class TestHostileBytes:
    @given(wire=valid_wire(), data=st.data())
    def test_truncation_is_a_protocol_error(self, wire, data):
        """Any strict prefix of a payload decodes to ProtocolError."""
        payload = wire[4:]
        cut = data.draw(st.integers(min_value=1, max_value=len(payload) - 1))
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload[:cut], 0, cut, at=0)

    @given(wire=valid_wire(), junk=st.binary(min_size=1, max_size=16))
    def test_trailing_junk_is_a_protocol_error(self, wire, junk):
        payload = wire[4:] + junk
        # Appending bytes to an op can only legalize it by matching the
        # declared priority count exactly; skip that coincidence.
        if payload[0] == TAG_OP and len(junk) % 8 == 0:
            return
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload, 0, len(payload), at=0)

    @given(
        tag=st.integers(min_value=0, max_value=255).filter(
            lambda t: t not in (
                TAG_OP, TAG_RES, TAG_CONGESTION, TAG_OP_TRACE, TAG_JSON
            )
        ),
        body=st.binary(max_size=32),
    )
    def test_unknown_tag(self, tag, body):
        payload = bytes((tag,)) + body
        with pytest.raises(ProtocolError, match="unknown binary frame tag"):
            BINARY_CODEC.decode(payload, 0, len(payload), at=0)

    def test_empty_frame(self):
        with pytest.raises(ProtocolError, match="empty"):
            BINARY_CODEC.decode(b"", 0, 0, at=0)

    @given(body=st.binary(max_size=32))
    def test_garbage_control_json(self, body):
        payload = bytes((TAG_JSON,)) + body
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            parsed = None
        if isinstance(parsed, dict) and "t" in parsed:
            return  # accidentally valid
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload, 0, len(payload), at=0)

    @settings(max_examples=25)
    @given(wire=valid_wire(), at=st.integers(min_value=0, max_value=1 << 40))
    def test_errors_report_the_stream_offset(self, wire, at):
        """A corrupt frame names the absolute byte where it sat, so a
        gigabyte into a pipelined stream is still a findable position."""
        payload = wire[4:][:-1]  # truncate
        with pytest.raises(ProtocolError, match=f"at byte {at}"):
            BINARY_CODEC.decode(payload, 0, len(payload), at=at)


class TestCodecRegistry:
    def test_versions(self):
        assert codec_for(1) is JSON_CODEC
        assert codec_for(2) is BINARY_CODEC
        for bad in (0, 3, "2", None):
            with pytest.raises(ProtocolError, match="unsupported protocol"):
                codec_for(bad)
