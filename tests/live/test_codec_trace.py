"""Property tests of the protocol-v2 traced-op frame (``TAG_OP_TRACE``).

The traced-op layout is the op layout plus a trailing little-endian u64
trace id, with exact-length enforcement preserved (a truncated or padded
frame is a :class:`ProtocolError`, never a silent misparse).  The interop
contract with protocol v1 is asymmetric by design: the JSON codec carries
the trace id as an optional ``trace`` key that old servers ignore — v1
silently drops the context without erroring.
"""

import json
import struct

import pytest
from hypothesis import given, strategies as st

from repro.serve.codec import (
    BINARY_CODEC,
    JSON_CODEC,
    TAG_OP,
    TAG_OP_TRACE,
)
from repro.serve.protocol import ProtocolError

_LENGTH = struct.Struct(">I")

rids = st.integers(min_value=0, max_value=(1 << 32) - 1)
servers = st.integers(min_value=0, max_value=(1 << 16) - 1)
keys = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
sizes = st.integers(min_value=0, max_value=(1 << 32) - 1)
floats = st.floats(allow_nan=False, width=64)
priorities = st.lists(floats, min_size=0, max_size=255)
trace_ids = st.integers(min_value=0, max_value=(1 << 64) - 1)


def payload_of(wire: bytes) -> bytes:
    (length,) = _LENGTH.unpack_from(wire, 0)
    assert length == len(wire) - 4
    return wire[4:]


def decode(codec, wire: bytes, at: int = 0):
    return codec.decode(wire, 4, len(wire), at)


def traced_frame(rid, server, key, size, prio, trace):
    return {
        "t": "op",
        "rid": rid,
        "server": server,
        "key": key,
        "size": size,
        "prio": prio,
        "trace": trace,
    }


class TestTracedRoundTrip:
    @given(
        rid=rids, server=servers, key=keys, size=sizes,
        prio=priorities, trace=trace_ids,
    )
    def test_binary_roundtrip(self, rid, server, key, size, prio, trace):
        frame = traced_frame(rid, server, key, size, prio, trace)
        wire = BINARY_CODEC.encode(frame)
        assert wire == BINARY_CODEC.encode_op_traced(
            rid, server, key, size, prio, trace
        )
        assert payload_of(wire)[0] == TAG_OP_TRACE
        back = decode(BINARY_CODEC, wire)
        assert back == {**frame, "prio": tuple(prio)}
        assert back["trace"] == trace

    @given(rid=rids, server=servers, key=keys, size=sizes, prio=priorities)
    def test_untraced_op_keeps_the_plain_tag(self, rid, server, key, size, prio):
        """``trace: None`` and no trace key both take the TAG_OP path."""
        frame = {
            "t": "op", "rid": rid, "server": server,
            "key": key, "size": size, "prio": prio,
        }
        bare = BINARY_CODEC.encode(frame)
        assert payload_of(bare)[0] == TAG_OP
        assert BINARY_CODEC.encode({**frame, "trace": None}) == bare

    @given(
        rid=rids, server=servers, key=keys, size=sizes,
        prio=st.lists(floats, max_size=4), trace=trace_ids,
    )
    def test_v1_json_carries_then_silently_drops_the_context(
        self, rid, server, key, size, prio, trace
    ):
        """The v1 wire keeps ``trace`` as plain JSON; consumers that
        predate it (the old server's op handler reads only the op
        fields) ignore it without erroring."""
        frame = traced_frame(rid, server, key, size, prio, trace)
        wire = JSON_CODEC.encode(frame)
        raw = json.loads(payload_of(wire).decode("utf-8"))
        assert raw["trace"] == trace
        back = decode(JSON_CODEC, wire)
        assert back["trace"] == trace
        # A v1 consumer reads only the op fields; removing the trace key
        # leaves exactly the frame it would have seen pre-tracing.
        untraced = dict(frame)
        del untraced["trace"]
        back.pop("trace")
        assert back == untraced


class TestTracedEncodeBounds:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(trace=1 << 64), "trace"),
            (dict(trace=-1), "trace"),
            (dict(rid=1 << 32), "rid"),
            (dict(server=-1), "server"),
            (dict(key=1 << 63), "key"),
            (dict(size=-1), "size"),
            (dict(prio=[0.0] * 256), "priority"),
        ],
    )
    def test_bounds(self, kwargs, match):
        fields = dict(rid=1, server=2, key=3, size=4, prio=[0.5], trace=7)
        fields.update(kwargs)
        with pytest.raises(ProtocolError, match=match):
            BINARY_CODEC.encode_op_traced(
                fields["rid"], fields["server"], fields["key"],
                fields["size"], fields["prio"], fields["trace"],
            )


@st.composite
def traced_wire(draw):
    return BINARY_CODEC.encode_op_traced(
        draw(rids), draw(servers), draw(keys), draw(sizes),
        draw(st.lists(floats, max_size=4)), draw(trace_ids),
    )


class TestHostileTracedBytes:
    @given(wire=traced_wire(), data=st.data())
    def test_any_truncation_is_a_protocol_error(self, wire, data):
        payload = wire[4:]
        cut = data.draw(st.integers(min_value=1, max_value=len(payload) - 1))
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload[:cut], 0, cut, at=0)

    @given(wire=traced_wire(), junk=st.binary(min_size=1, max_size=16))
    def test_trailing_junk_is_a_protocol_error(self, wire, junk):
        payload = wire[4:] + junk
        # Appending a multiple of 8 bytes can only legalize the frame by
        # matching the declared priority count; skip that coincidence.
        if len(junk) % 8 == 0:
            return
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload, 0, len(payload), at=0)

    @given(wire=traced_wire())
    def test_exact_length_is_enforced_not_inferred(self, wire):
        """Dropping exactly the 8-byte trace tail is still an error: the
        traced tag promises a trace id, so the shorter-but-aligned frame
        must not quietly decode as an untraced op."""
        payload = wire[4:][:-8]
        with pytest.raises(ProtocolError, match="traced op"):
            BINARY_CODEC.decode(payload, 0, len(payload), at=0)

    @given(wire=traced_wire(), at=st.integers(min_value=0, max_value=1 << 40))
    def test_errors_report_the_stream_offset(self, wire, at):
        payload = wire[4:][:-1]
        with pytest.raises(ProtocolError, match=f"at byte {at}"):
            BINARY_CODEC.decode(payload, 0, len(payload), at=at)
