"""End-to-end loopback tests: live server + loadgen in one event loop.

Scaled far below the benchmark sizes (hundreds of tasks, small time
stretch) so the suite stays fast; the CI smoke job and the loopback
benchmark run the acceptance-scale version.
"""

import asyncio

import pytest

from repro.harness import validate_summary_dict
from repro.loadgen import LiveTransportError, live_summary, run_live, run_live_seeds
from repro.loadgen.compare import run_compare
from repro.scenarios import get_scenario
from repro.serve import LiveServer


TIME_SCALE = 2.0


async def loopback_run(scenario, strategy, n_tasks=200, seed=1, config=None):
    spec = get_scenario(scenario)
    if config is None:
        config = spec.build_config(strategy=strategy, n_tasks=n_tasks)
    server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
    await server.start()
    try:
        return await run_live(config, seed=seed, host=server.host, port=server.port)
    finally:
        await server.stop()


class TestLoopbackRuns:
    def test_credits_strategy_completes_all_tasks(self):
        result = asyncio.run(loopback_run("steady-state", "unifincr-credits"))
        assert result.tasks_completed == 200
        assert result.tasks_measured == 190  # 5% warmup excluded
        assert result.requests_served >= 200  # >= one request per task
        assert result.sim_duration > 0
        p99 = result.summary((99.0,)).p99
        assert 0 < p99 < float("inf")
        assert result.extras["live_time_scale"] == TIME_SCALE
        assert "congestion_signals" in result.extras  # credits audit trail

    def test_c3_strategy_completes_all_tasks(self):
        result = asyncio.run(loopback_run("steady-state", "c3", n_tasks=150))
        assert result.tasks_completed == 150
        assert result.extras["live_requests_rejected"] == 0.0

    def test_hedged_strategy_may_duplicate(self):
        result = asyncio.run(loopback_run("steady-state", "hedged", n_tasks=150))
        assert result.tasks_completed == 150
        # Duplicates (if any) surface in both the audit extras and the
        # served-vs-needed request accounting.
        assert result.extras["hedges_sent"] >= 0.0

    def test_fault_schedule_replays_live(self):
        spec = get_scenario("straggler")
        config = spec.build_config(strategy="unifincr-credits", n_tasks=350)
        result = asyncio.run(
            loopback_run("straggler", "unifincr-credits", config=config)
        )
        assert result.tasks_completed == 350
        assert result.extras["slowdown_windows"] >= 1.0

    def test_multi_seed_runs_return_seed_order(self):
        async def scenario():
            config = get_scenario("steady-state").build_config(
                strategy="oblivious-lor", n_tasks=80
            )
            server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
            await server.start()
            try:
                return await run_live_seeds(
                    config, (3, 4), host=server.host, port=server.port
                )
            finally:
                await server.stop()

        results = asyncio.run(scenario())
        assert [r.seed for r in results] == [3, 4]
        assert all(r.tasks_completed == 80 for r in results)


class TestGuards:
    def test_model_strategies_have_no_live_realization(self):
        with pytest.raises(ValueError, match="unrealizable"):
            asyncio.run(loopback_run("steady-state", "unifincr-model"))

    def test_open_fault_windows_are_reverted_on_teardown(self):
        """A run ending mid-window must not leave the server degraded
        (heterogeneous-cluster applies a permanent slowdown at t=0)."""

        async def scenario():
            config = get_scenario("heterogeneous-cluster").build_config(
                strategy="oblivious-lor", n_tasks=120
            )
            server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
            await server.start()
            try:
                await run_live(config, host=server.host, port=server.port)
                # The revert admin frames flush during transport close;
                # give the server loop a moment to apply them.
                for _ in range(100):
                    if all(
                        w.speed_factor == 1.0 for w in server.workers.values()
                    ):
                        break
                    await asyncio.sleep(0.01)
                return [w.speed_factor for w in server.workers.values()]
            finally:
                await server.stop()

        assert asyncio.run(scenario()) == [1.0] * 9

    def test_cluster_shape_mismatch_is_fatal(self):
        async def scenario():
            serve_config = get_scenario("steady-state").build_config(
                strategy="c3", n_tasks=50
            )
            server = LiveServer.from_config(
                serve_config, time_scale=TIME_SCALE, port=0
            )
            await server.start()
            try:
                # A drive config with a different backend tier: refused.
                drive_config = get_scenario("steady-state").build_config(
                    strategy="c3",
                    n_tasks=50,
                    cluster=serve_config.cluster.__class__(n_servers=5),
                )
                await run_live(
                    drive_config, host=server.host, port=server.port
                )
            finally:
                await server.stop()

        with pytest.raises(LiveTransportError, match="n_servers"):
            asyncio.run(scenario())


class TestProtocolViolations:
    def test_malformed_frame_is_answered_with_an_error_frame(self):
        """The reply explaining the close must reach the peer (the outbox
        is flushed before the connection is torn down)."""
        from repro.serve.protocol import read_frame

        async def scenario():
            config = get_scenario("steady-state").build_config(
                strategy="c3", n_tasks=10
            )
            server = LiveServer.from_config(config, time_scale=TIME_SCALE, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write((1 << 24).to_bytes(4, "big"))  # absurd length
                await writer.drain()
                frame = await asyncio.wait_for(read_frame(reader), timeout=5)
                writer.close()
                return frame
            finally:
                await server.stop()

        frame = asyncio.run(scenario())
        assert frame["t"] == "error"
        assert "exceeds the cap" in frame["error"]


class TestSummarySchema:
    def test_live_summary_matches_sim_schema(self):
        result = asyncio.run(
            loopback_run("steady-state", "unifincr-credits", n_tasks=150)
        )
        summary = live_summary(
            {"unifincr-credits": [result]},
            meta={"realm": "live", "scenario": "steady-state"},
        )
        validate_summary_dict(summary)
        entry = summary["strategies"]["unifincr-credits"]
        assert entry["count"] == result.tasks_measured
        assert set(entry["percentiles_ms"]) == {"p50", "p95", "p99"}


class TestCompare:
    def test_compare_runs_both_realms(self):
        report = run_compare(
            "steady-state",
            ("oblivious-lor", "unifincr-credits"),
            n_tasks=150,
            seeds=(1,),
            time_scale=TIME_SCALE,
        )
        assert report.strategies == ("oblivious-lor", "unifincr-credits")
        for realm in ("sim", "live"):
            for name in report.strategies:
                assert report.p99_ms(realm, name) > 0
        data = report.to_dict()
        validate_summary_dict(data["sim"])
        validate_summary_dict(data["live"])
        assert data["p99_ordering"]["sim"]
        rendered = report.render()
        assert "p99 ordering (live)" in rendered
