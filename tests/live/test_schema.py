"""The shared summary-schema contract between sim and live runs.

One validator (:func:`repro.harness.validate_summary_dict`) must accept
what *both* realms emit -- the acceptance hinge for the sim<->live
differential harness -- and reject malformed impostors.
"""

import copy
import json

import pytest

from repro.harness import (
    ExperimentConfig,
    compare_strategies,
    run_experiment,
    validate_summary_dict,
)


@pytest.fixture(scope="module")
def sim_summary():
    config = ExperimentConfig(strategy="oblivious-random", n_tasks=200)
    runs = [run_experiment(config, seed) for seed in (1, 2)]
    return compare_strategies({"oblivious-random": runs}).to_dict()


class TestAccepts:
    def test_sim_comparison_dict_validates(self, sim_summary):
        validate_summary_dict(sim_summary)

    def test_meta_block_is_permitted(self, sim_summary):
        data = dict(sim_summary)
        data["meta"] = {"realm": "live", "time_scale": 25.0}
        validate_summary_dict(data)

    def test_survives_json_round_trip(self, sim_summary):
        validate_summary_dict(json.loads(json.dumps(sim_summary)))


class TestRejects:
    def test_missing_seeds(self, sim_summary):
        data = {"strategies": sim_summary["strategies"]}
        with pytest.raises(ValueError, match="seeds"):
            validate_summary_dict(data)

    def test_unknown_top_level_key(self, sim_summary):
        data = dict(sim_summary)
        data["latencies"] = []
        with pytest.raises(ValueError, match="unexpected top-level"):
            validate_summary_dict(data)

    def test_empty_strategies(self, sim_summary):
        data = dict(sim_summary)
        data["strategies"] = {}
        with pytest.raises(ValueError, match="strategies"):
            validate_summary_dict(data)

    def test_missing_percentiles(self, sim_summary):
        data = copy.deepcopy(sim_summary)
        del data["strategies"]["oblivious-random"]["percentiles_ms"]
        with pytest.raises(ValueError, match="missing"):
            validate_summary_dict(data)

    def test_non_finite_percentile(self, sim_summary):
        data = copy.deepcopy(sim_summary)
        data["strategies"]["oblivious-random"]["percentiles_ms"]["p99"] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            validate_summary_dict(data)

    def test_bad_percentile_label(self, sim_summary):
        data = copy.deepcopy(sim_summary)
        data["strategies"]["oblivious-random"]["percentiles_ms"]["q99"] = 1.0
        with pytest.raises(ValueError, match="label"):
            validate_summary_dict(data)

    def test_per_seed_length_mismatch(self, sim_summary):
        data = copy.deepcopy(sim_summary)
        data["strategies"]["oblivious-random"]["per_seed_p99_ms"].append(1.0)
        with pytest.raises(ValueError, match="per_seed_p99_ms"):
            validate_summary_dict(data)
