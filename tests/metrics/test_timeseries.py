"""Unit tests for time series, windowed rates and EWMA estimators."""

import math

import pytest

from repro.metrics import EwmaEstimator, TimeSeries, WindowedRate


class TestTimeSeries:
    def test_record_and_window(self):
        ts = TimeSeries("q")
        for t in range(10):
            ts.record(float(t), t * 2.0)
        window = ts.window(2.0, 5.0)
        assert [t for t, _ in window] == [2.0, 3.0, 4.0]
        assert [v for _, v in window] == [4.0, 6.0, 8.0]

    def test_rejects_time_regression(self):
        ts = TimeSeries()
        ts.record(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 0.0)

    def test_mean_over(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert ts.mean_over(0.0, 2.0) == 15.0

    def test_mean_over_empty_window_raises(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        with pytest.raises(ValueError):
            ts.mean_over(5.0, 6.0)

    def test_last(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.last()
        ts.record(1.0, 5.0)
        assert ts.last() == (1.0, 5.0)

    def test_window_validates_bounds(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.window(2.0, 1.0)


class TestWindowedRate:
    def test_rate_during_warmup_uses_elapsed_time(self):
        # 4 events over 0.4s of elapsed time: the true rate is 10/s, not
        # the 4/s the old full-window denominator reported.
        wr = WindowedRate(window=1.0)
        for t in (0.1, 0.2, 0.3, 0.4):
            wr.record(t)
        assert wr.rate(0.5) == pytest.approx(4.0 / 0.4)

    def test_rate_after_full_window_divides_by_window(self):
        wr = WindowedRate(window=1.0)
        for t in (0.1, 0.2, 0.3, 0.4):
            wr.record(t)
        # A full window has elapsed since the first event: back to /window
        # (the event at 0.1 has left the [0.2, 1.2] window).
        assert wr.rate(1.2) == pytest.approx(3.0 / 1.0)

    def test_rate_at_first_event_is_clamped_not_infinite(self):
        wr = WindowedRate(window=1.0)
        wr.record(5.0)
        rate = wr.rate(5.0)
        assert math.isfinite(rate)
        assert rate == pytest.approx(1.0 / 1e-6)

    def test_warmup_denominator_tracks_first_event_not_eviction(self):
        wr = WindowedRate(window=1.0)
        wr.record(0.0)
        wr.record(0.5)
        # 1.2s after the first event: the warm-up clamp no longer applies
        # even though the first event itself was evicted.
        assert wr.rate(1.2) == pytest.approx(1.0 / 1.0)

    def test_empty_rate_is_zero(self):
        wr = WindowedRate(window=1.0)
        assert wr.rate(10.0) == 0.0
        assert wr.count(10.0) == 0.0

    def test_eviction(self):
        wr = WindowedRate(window=1.0)
        wr.record(0.0)
        wr.record(2.0)
        assert wr.count(2.5) == 1.0  # first event evicted

    def test_weighted_events(self):
        wr = WindowedRate(window=2.0)
        wr.record(0.0, weight=3.0)
        wr.record(1.0, weight=1.0)
        assert wr.count(1.5) == 4.0
        assert wr.rate(1.5) == pytest.approx(4.0 / 1.5)

    def test_stale_query_raises(self):
        # Events recorded after `now` must not be silently counted: a
        # stale-clock query would overstate the rate.
        wr = WindowedRate(window=1.0)
        wr.record(1.0)
        wr.record(2.0)
        with pytest.raises(ValueError, match="stale"):
            wr.rate(1.5)
        with pytest.raises(ValueError, match="stale"):
            wr.count(1.5)

    def test_query_at_latest_event_time_is_allowed(self):
        wr = WindowedRate(window=1.0)
        wr.record(1.0)
        wr.record(2.0)
        assert wr.count(2.0) == 2.0

    def test_rejects_time_regression(self):
        wr = WindowedRate(window=1.0)
        wr.record(1.0)
        with pytest.raises(ValueError):
            wr.record(0.5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)


class TestEwmaEstimator:
    def test_first_sample_initializes(self):
        e = EwmaEstimator(time_constant=1.0)
        e.update(0.0, 10.0)
        assert e.value == 10.0

    def test_converges_to_constant_signal(self):
        e = EwmaEstimator(time_constant=0.5)
        for i in range(100):
            e.update(i * 0.1, 42.0)
        assert e.value == pytest.approx(42.0)

    def test_decay_follows_time_constant(self):
        e = EwmaEstimator(time_constant=1.0)
        e.update(0.0, 0.0)
        # One time constant later, a unit step should close 1 - 1/e of the gap.
        e.update(1.0, 1.0)
        assert e.value == pytest.approx(1.0 - math.exp(-1.0), rel=1e-9)

    def test_step_size_invariance(self):
        """Sampling cadence must not change the effective time constant:
        ten 0.1s updates toward a constant target equal one 1.0s update."""
        fast = EwmaEstimator(time_constant=1.0)
        slow = EwmaEstimator(time_constant=1.0)
        fast.update(0.0, 0.0)
        slow.update(0.0, 0.0)
        for i in range(1, 11):
            fast.update(i * 0.1, 1.0)
        slow.update(1.0, 1.0)
        assert fast.value == pytest.approx(slow.value, rel=1e-9)

    def test_rejects_time_regression(self):
        e = EwmaEstimator(time_constant=1.0)
        e.update(1.0, 1.0)
        with pytest.raises(ValueError):
            e.update(0.5, 1.0)

    def test_invalid_time_constant(self):
        with pytest.raises(ValueError):
            EwmaEstimator(time_constant=0.0)
