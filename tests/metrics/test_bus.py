"""Unit tests for the streamed metrics bus primitives."""

import re

import pytest

from repro.metrics.bus import (
    BusEvent,
    BusSampler,
    BusSnapshot,
    MetricsBus,
    WindowedQuantiles,
    escape_help_text,
    escape_label_value,
    prometheus_line,
    render_prometheus,
    snapshot_prometheus,
)

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_COMMENT_RE = re.compile(rf"^# (HELP|TYPE) {_NAME} .+$")
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(?:\{{{_NAME}=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    rf"(?:,{_NAME}=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\}})? "
    r"[0-9eE+\-.naif]+$"
)


def validate_exposition(text):
    """Assert ``text`` is well-formed Prometheus exposition format.

    Every line parses as a comment or a sample; every sample's family
    has a ``# TYPE`` line; all samples of a family are contiguous (the
    format forbids interleaving groups).
    """
    assert text.endswith("\n")
    typed = set()
    family_order = []
    for line in text.splitlines():
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            assert match, f"malformed comment line: {line!r}"
            if match.group(1) == "TYPE":
                typed.add(line.split()[2])
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        family = match.group(1)
        if not family_order or family_order[-1] != family:
            family_order.append(family)
    assert set(family_order) <= typed, (
        f"families missing TYPE lines: {set(family_order) - typed}"
    )
    assert len(family_order) == len(set(family_order)), (
        f"interleaved metric families: {family_order}"
    )


class TestWindowedQuantiles:
    def test_quantiles_over_the_trailing_window(self):
        wq = WindowedQuantiles(window=1.0)
        for t, v in ((0.0, 1.0), (0.5, 2.0), (0.9, 3.0)):
            wq.record(t, v)
        assert wq.count(1.0) == 3
        p50, p100 = wq.quantiles(1.0, (0.5, 1.0))
        assert p50 == 2.0
        assert p100 == 3.0

    def test_events_evict_once_older_than_the_window(self):
        wq = WindowedQuantiles(window=1.0)
        wq.record(0.0, 10.0)
        wq.record(2.0, 1.0)
        assert wq.count(2.0) == 1
        assert wq.quantiles(2.0, (0.99,)) == (1.0,)

    def test_empty_window_reports_zero(self):
        wq = WindowedQuantiles(window=1.0)
        assert wq.count(5.0) == 0
        assert wq.quantiles(5.0, (0.5, 0.99)) == (0.0, 0.0)

    def test_time_regression_on_record_raises(self):
        wq = WindowedQuantiles(window=1.0)
        wq.record(1.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            wq.record(0.5, 2.0)

    def test_stale_query_raises(self):
        wq = WindowedQuantiles(window=1.0)
        wq.record(1.0, 1.0)
        with pytest.raises(ValueError, match="stale"):
            wq.count(0.5)
        with pytest.raises(ValueError, match="stale"):
            wq.quantiles(0.5, (0.5,))

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedQuantiles(window=0.0)


class TestBusSampler:
    def test_snapshot_reports_windowed_rates_and_percentiles(self):
        sampler = BusSampler(window=0.1)
        for i in range(10):
            sampler.observe_arrival(i * 0.01)
            sampler.observe_completion(i * 0.01, latency=0.002 * (i + 1))
        snap = sampler.snapshot(0.09, seq=1)
        assert snap.window_count == 10
        assert snap.completed == 10
        assert snap.arrival_rate == pytest.approx(100.0)
        assert snap.served_rate == pytest.approx(100.0)
        # Latencies 2..20 ms; the p50 sits mid-range, the p99 near the top.
        assert 8.0 <= snap.latency_p50_ms <= 14.0
        assert 18.0 <= snap.latency_p99_ms <= 20.0

    def test_queue_depths_are_windowed_means(self):
        sampler = BusSampler(window=0.1)
        sampler.observe_depths(0.00, (0.0, 4.0))
        sampler.observe_depths(0.05, (2.0, 0.0))
        snap = sampler.snapshot(0.05, seq=1)
        assert snap.queue_depths == (1.0, 2.0)

    def test_depth_samples_evict_with_the_window(self):
        sampler = BusSampler(window=0.1)
        sampler.observe_depths(0.0, (100.0,))
        sampler.observe_depths(1.0, (2.0,))
        snap = sampler.snapshot(1.0, seq=1)
        assert snap.queue_depths == (2.0,)

    def test_empty_sampler_snapshot_is_all_zero(self):
        snap = BusSampler(window=0.1).snapshot(0.5, seq=3)
        assert snap.window_count == 0
        assert snap.latency_p99_ms == 0.0
        assert snap.queue_depths == ()
        assert snap.seq == 3

    def test_snapshot_to_dict_is_json_friendly(self):
        sampler = BusSampler(window=0.1)
        sampler.observe_depths(0.0, (1.0, 2.0))
        out = sampler.snapshot(0.0, seq=1).to_dict()
        assert out["queue_depths"] == [1.0, 2.0]
        assert set(out) == {
            "time", "seq", "window", "window_count", "completed",
            "latency_p50_ms", "latency_p99_ms", "arrival_rate",
            "served_rate", "queue_depths",
        }


class TestMetricsBus:
    def test_publish_fans_out_and_retains_history(self):
        bus = MetricsBus()
        seen = []
        bus.subscribe(on_snapshot=seen.append)
        snap = BusSampler().snapshot(0.0, seq=1)
        bus.publish(snap)
        assert seen == [snap]
        assert bus.latest is snap
        assert bus.published == 1

    def test_events_reach_event_subscribers_only(self):
        bus = MetricsBus()
        snaps, events = [], []
        bus.subscribe(on_snapshot=snaps.append, on_event=events.append)
        event = BusEvent(0.5, "slo-breach", {"p99_ms": 12.0})
        bus.emit(event)
        assert events == [event]
        assert snaps == []
        assert event.to_dict()["detail"] == {"p99_ms": 12.0}

    def test_history_ring_is_bounded(self):
        bus = MetricsBus(history=2)
        for seq in range(5):
            bus.publish(BusSampler().snapshot(float(seq), seq=seq))
        assert len(bus.snapshots) == 2
        assert bus.latest.seq == 4
        assert bus.published == 5

    def test_latest_is_none_before_any_publish(self):
        assert MetricsBus().latest is None


class TestPrometheusRendering:
    def test_line_with_and_without_labels(self):
        assert prometheus_line("x_total", 3.0) == "x_total 3.0"
        line = prometheus_line("depth", 2.0, {"server": 1})
        assert line == 'depth{server="1"} 2.0'

    def test_render_sanitizes_and_prefixes_keys(self):
        text = render_prometheus({"p99 (ms)": 1.5})
        assert text.splitlines() == [
            "# HELP repro_p99__ms_ repro metric p99__ms_",
            "# TYPE repro_p99__ms_ gauge",
            "repro_p99__ms_ 1.5",
        ]
        assert text.endswith("\n")

    def test_snapshot_prometheus_has_per_server_depth_lines(self):
        snapshot = BusSnapshot(
            time=0.1, seq=2, window=0.1, window_count=5, completed=7,
            latency_p50_ms=1.0, latency_p99_ms=9.0, arrival_rate=50.0,
            served_rate=50.0, queue_depths=(0.0, 3.5),
        )
        text = snapshot_prometheus(snapshot)
        assert "repro_latency_p99_ms 9.0" in text
        assert 'repro_queue_depth{server="0"} 0.0' in text
        assert 'repro_queue_depth{server="1"} 3.5' in text
        assert text.endswith("\n")


class TestExpositionEscaping:
    def test_label_values_escape_the_three_special_characters(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value(7) == "7"

    def test_help_text_escapes_backslash_and_newline(self):
        assert escape_help_text("a\\b\nc") == "a\\\\b\\nc"

    def test_hostile_label_value_stays_one_well_formed_line(self):
        line = prometheus_line("m", 1.0, {"who": 'ev"il\\\n'})
        assert line == 'm{who="ev\\"il\\\\\\n"} 1.0'
        assert "\n" not in line


class TestExpositionFormat:
    """Satellite contract: exported pages parse as valid exposition text."""

    def test_render_prometheus_is_well_formed(self):
        validate_exposition(render_prometheus(
            {"p99 (ms)": 1.5, "served/rate": 2.0, "completed": 7.0},
            labels={"worker": 3},
        ))

    def test_render_prometheus_honors_help_overrides(self):
        text = render_prometheus(
            {"depth": 1.0}, help_texts={"depth": "queue depth\nper worker"}
        )
        assert "# HELP repro_depth queue depth\\nper worker" in text
        validate_exposition(text)

    def test_snapshot_prometheus_is_well_formed(self):
        snapshot = BusSampler(window=0.1).snapshot(0.5, seq=3)
        validate_exposition(snapshot_prometheus(snapshot))

    def test_snapshot_with_depths_is_well_formed(self):
        sampler = BusSampler(window=0.1)
        sampler.observe_depths(0.0, (1.0, 2.0, 3.0))
        sampler.observe_completion(0.0, 0.004)
        validate_exposition(snapshot_prometheus(sampler.snapshot(0.0, seq=1)))
