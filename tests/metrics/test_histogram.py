"""Unit + property tests for the log-bucketed histogram."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import LogHistogram


class TestBasics:
    def test_empty_histogram_raises_on_queries(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.quantile(0.5)
        with pytest.raises(ValueError):
            _ = h.mean

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            LogHistogram(precision=0.0)

    def test_rejects_negative_and_nan(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.record(-1.0)
        with pytest.raises(ValueError):
            h.record(float("nan"))

    def test_single_value(self):
        h = LogHistogram()
        h.record(0.005)
        assert h.count == 1
        assert h.mean == 0.005
        assert h.quantile(0.5) == pytest.approx(0.005, rel=0.02)
        assert h.min == h.max == 0.005

    def test_mean_is_exact_not_bucketed(self):
        h = LogHistogram(precision=0.5)  # very coarse buckets
        values = [0.001, 0.002, 0.003, 0.009]
        h.record_many(values)
        assert h.mean == pytest.approx(sum(values) / len(values), rel=1e-12)

    def test_clamping_counted(self):
        h = LogHistogram(min_value=1e-3, max_value=1.0)
        h.record(1e-6)
        h.record(100.0)
        assert h.clamped_low == 1
        assert h.clamped_high == 1
        assert h.count == 2

    def test_extremes(self):
        h = LogHistogram()
        h.record_many([0.001, 0.002, 0.003])
        assert h.quantile(0.0) == 0.001
        assert h.quantile(1.0) == 0.003

    def test_quantile_out_of_range(self):
        h = LogHistogram()
        h.record(0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_percentile_alias(self):
        h = LogHistogram()
        h.record_many([0.001 * i for i in range(1, 101)])
        assert h.percentile(50.0) == h.quantile(0.5)


class TestAccuracy:
    def test_quantile_relative_error_bounded(self):
        rng = random.Random(42)
        h = LogHistogram(min_value=1e-6, max_value=10.0, precision=0.01)
        values = sorted(rng.lognormvariate(-6, 1.5) for _ in range(20_000))
        h.record_many(values)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = values[int(q * (len(values) - 1))]
            approx = h.quantile(q)
            assert abs(approx - exact) / exact < 0.05, (q, exact, approx)

    def test_merge_equals_combined_stream(self):
        rng = random.Random(7)
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for i in range(5000):
            v = rng.expovariate(1000.0) + 1e-6
            combined.record(v)
            (a if i % 2 == 0 else b).record(v)
        a.merge(b)
        assert a.count == combined.count
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == pytest.approx(combined.quantile(q), rel=1e-9)

    def test_merge_rejects_incompatible(self):
        a = LogHistogram(precision=0.01)
        b = LogHistogram(precision=0.02)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_cdf_points_monotone(self):
        rng = random.Random(3)
        h = LogHistogram()
        h.record_many(rng.uniform(1e-4, 1e-1) for _ in range(2000))
        points = h.cdf_points()
        fractions = [f for _, f in points]
        values = [v for v, _ in points]
        assert fractions == sorted(fractions)
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)


@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=500,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_quantiles_within_observed_range(values, q):
    h = LogHistogram()
    h.record_many(values)
    result = h.quantile(q)
    assert min(values) <= result <= max(values)


@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_quantile_function_is_monotone(values):
    h = LogHistogram()
    h.record_many(values)
    qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    results = [h.quantile(q) for q in qs]
    assert results == sorted(results)
