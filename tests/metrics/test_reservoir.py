"""Unit + property tests for exact samples and reservoirs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import ExactSample, Reservoir, exact_quantile


class TestExactQuantile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)

    def test_single_element(self):
        assert exact_quantile([3.0], 0.0) == 3.0
        assert exact_quantile([3.0], 1.0) == 3.0

    def test_median_interpolation(self):
        assert exact_quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_matches_numpy_convention(self):
        np = pytest.importorskip("numpy")
        rng = random.Random(1)
        data = sorted(rng.random() for _ in range(101))
        for q in (0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0):
            assert exact_quantile(data, q) == pytest.approx(
                float(np.percentile(data, q * 100)), rel=1e-12
            )


class TestExactSample:
    def test_empty_raises(self):
        s = ExactSample()
        with pytest.raises(ValueError):
            _ = s.mean
        with pytest.raises(ValueError):
            s.quantile(0.5)

    def test_basic_stats(self):
        s = ExactSample()
        s.record_many([3.0, 1.0, 2.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.quantile(0.5) == 2.0

    def test_values_returns_sorted_copy(self):
        s = ExactSample()
        s.record_many([3.0, 1.0])
        values = s.values()
        assert values == [1.0, 3.0]
        values.append(99.0)
        assert s.count == 2  # copy, not a view

    def test_interleaved_record_and_query(self):
        s = ExactSample()
        s.record(5.0)
        assert s.quantile(0.5) == 5.0
        s.record(1.0)  # out of order: must trigger re-sort
        assert s.quantile(0.0) == 1.0

    def test_stdev(self):
        s = ExactSample()
        s.record_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.stdev() == pytest.approx(2.138, rel=1e-3)

    def test_stdev_needs_two(self):
        s = ExactSample()
        s.record(1.0)
        with pytest.raises(ValueError):
            s.stdev()


class TestReservoir:
    def test_below_capacity_is_exact(self):
        r = Reservoir(capacity=100)
        r.record_many(float(i) for i in range(50))
        assert len(r) == 50
        assert r.count == 50
        assert r.quantile(0.0) == 0.0
        assert r.quantile(1.0) == 49.0

    def test_capacity_respected(self):
        r = Reservoir(capacity=64, seed=1)
        r.record_many(float(i) for i in range(10_000))
        assert len(r) == 64
        assert r.count == 10_000

    def test_quantile_estimate_reasonable(self):
        rng = random.Random(5)
        r = Reservoir(capacity=5000, seed=2)
        values = [rng.random() for _ in range(100_000)]
        r.record_many(values)
        assert r.quantile(0.5) == pytest.approx(0.5, abs=0.05)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Reservoir().quantile(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
    )
)
@settings(max_examples=100, deadline=None)
def test_exact_sample_quantiles_monotone_and_bounded(values):
    s = ExactSample()
    s.record_many(values)
    qs = [0.0, 0.2, 0.5, 0.8, 1.0]
    results = [s.quantile(q) for q in qs]
    assert results == sorted(results)
    assert results[0] == min(values)
    assert results[-1] == max(values)
