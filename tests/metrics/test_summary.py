"""Unit tests for latency summaries and seed averaging."""

import math

import pytest

from repro.metrics import (
    ExactSample,
    LatencySummary,
    PAPER_PERCENTILES,
    mean_of_summaries,
)


def sample_of(values):
    s = ExactSample()
    s.record_many(values)
    return s


class TestLatencySummary:
    def test_from_recorder(self):
        s = sample_of([float(i) for i in range(1, 101)])
        summary = LatencySummary.from_recorder("test", s, (50.0, 99.0))
        assert summary.count == 100
        assert summary.median == pytest.approx(50.5)
        assert summary.p99 == pytest.approx(99.01)

    def test_empty_recorder_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_recorder("x", ExactSample())

    def test_unknown_percentile_raises(self):
        summary = LatencySummary.from_recorder("x", sample_of([1.0, 2.0]), (50.0,))
        with pytest.raises(KeyError):
            summary.percentile(99.0)

    def test_scaled(self):
        summary = LatencySummary.from_recorder("x", sample_of([0.001, 0.002]), (50.0,))
        ms = summary.scaled(1e3)
        assert ms.percentile(50.0) == pytest.approx(1.5)
        assert ms.mean == pytest.approx(1.5)
        assert ms.count == summary.count

    def test_ratio_to(self):
        slow = LatencySummary.from_recorder("slow", sample_of([2.0, 4.0]), (50.0,))
        fast = LatencySummary.from_recorder("fast", sample_of([1.0, 2.0]), (50.0,))
        assert slow.ratio_to(fast)[50.0] == pytest.approx(2.0)

    def test_ratio_to_zero_denominator_is_inf(self):
        # Degenerate windows (e.g. an all-zero bus snapshot) can report a
        # zero percentile; the ratio must not raise ZeroDivisionError.
        num = LatencySummary("num", 2, 1.0, {50.0: 1.0})
        zero = LatencySummary("zero", 2, 0.0, {50.0: 0.0})
        assert num.ratio_to(zero)[50.0] == math.inf

    def test_ratio_to_zero_over_zero_is_nan(self):
        zero_a = LatencySummary("a", 2, 0.0, {50.0: 0.0})
        zero_b = LatencySummary("b", 2, 0.0, {50.0: 0.0})
        assert math.isnan(zero_a.ratio_to(zero_b)[50.0])

    def test_ratio_requires_shared_percentiles(self):
        a = LatencySummary.from_recorder("a", sample_of([1.0]), (50.0,))
        b = LatencySummary.from_recorder("b", sample_of([1.0]), (99.0,))
        with pytest.raises(ValueError):
            a.ratio_to(b)

    def test_as_row_converts_to_ms(self):
        summary = LatencySummary.from_recorder(
            "x", sample_of([0.001] * 10), (50.0, 99.0)
        )
        row = summary.as_row()
        assert row["p50"] == pytest.approx(1.0)
        assert row["p99"] == pytest.approx(1.0)
        assert row["mean"] == pytest.approx(1.0)

    def test_str_mentions_name_and_count(self):
        summary = LatencySummary.from_recorder("abc", sample_of([1.0, 2.0]), (50.0,))
        text = str(summary)
        assert "abc" in text and "n=2" in text

    def test_paper_percentiles_constant(self):
        assert PAPER_PERCENTILES == (50.0, 95.0, 99.0)


class TestMeanOfSummaries:
    def test_averages_percentiles(self):
        s1 = LatencySummary("x", 10, 1.0, {50.0: 1.0, 99.0: 10.0})
        s2 = LatencySummary("x", 10, 3.0, {50.0: 3.0, 99.0: 20.0})
        avg = mean_of_summaries([s1, s2])
        assert avg.mean == pytest.approx(2.0)
        assert avg.percentile(50.0) == pytest.approx(2.0)
        assert avg.percentile(99.0) == pytest.approx(15.0)
        assert avg.count == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_of_summaries([])

    def test_mismatched_percentiles_rejected(self):
        s1 = LatencySummary("x", 1, 1.0, {50.0: 1.0})
        s2 = LatencySummary("x", 1, 1.0, {99.0: 1.0})
        with pytest.raises(ValueError):
            mean_of_summaries([s1, s2])
