"""Hypothesis property suite for the time-series recorders.

Three invariants the streamed metrics bus (and the C3/credits estimators
it feeds) lean on:

* window boundary inclusivity -- ``count(now)`` is exactly the weight of
  events with ``now - window <= t <= now``, with the left edge inclusive;
* lazy/amortized eviction is invisible -- any interleaving of records and
  queries answers identically to an eager recompute over the full event
  history (the 4096-event amortized eviction in ``record`` must never
  change an answer);
* EWMA decay has a well-defined time constant -- folding a constant
  signal in over many small steps equals folding it in over one big step
  of the same total duration, regardless of the sampling cadence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import EwmaEstimator, TimeSeries, WindowedRate
from repro.metrics.timeseries import EPSILON_ELAPSED

# Tolerance for incremental-vs-eager weight sums: the recorder maintains
# a running sum (+= on record, -= on evict), which rounds differently
# from a fresh summation.
_SUM_TOL = dict(rel=1e-9, abs=1e-9)

# (gap, weight) lists; cumulative gaps give non-decreasing event times.
_gaps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def _events_from_gaps(gaps):
    events, t = [], 0.0
    for gap, weight in gaps:
        t += gap
        events.append((t, weight))
    return events


def _eager_count(events, window, now):
    return sum(w for t, w in events if now - window <= t <= now)


def _eager_rate(events, window, now):
    first = events[0][0] if events else None
    if first is None:
        elapsed = window
    else:
        elapsed = min(window, max(now - first, EPSILON_ELAPSED))
    return _eager_count(events, window, now) / elapsed


class TestWindowedRateProperties:
    @given(
        gaps=_gaps,
        window=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        after=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_count_matches_eager_window_filter(self, gaps, window, after):
        events = _events_from_gaps(gaps)
        wr = WindowedRate(window=window)
        for t, w in events:
            wr.record(t, w)
        now = events[-1][0] + after
        assert wr.count(now) == pytest.approx(
            _eager_count(events, window, now), **_SUM_TOL
        )

    @given(
        # Quarter-step times and windows are exact binary fractions, so
        # ``now - window`` lands exactly on the first event's timestamp
        # and the test probes the true boundary, not float rounding.
        quarter_gaps=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=30
        ),
        quarter_window=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200)
    def test_left_boundary_is_inclusive(self, quarter_gaps, quarter_window):
        events, t = [], 0.0
        for gap in quarter_gaps:
            t += gap * 0.25
            events.append((t, 1.0))
        window = quarter_window * 0.25
        wr = WindowedRate(window=window)
        for t, w in events:
            wr.record(t, w)
        # Query exactly one window after the first event: that event sits
        # on the left edge and must still be counted.
        first_t, first_w = events[0]
        now = first_t + window
        if now >= events[-1][0]:  # otherwise the query would be stale
            counted = wr.count(now)
            assert counted == pytest.approx(
                _eager_count(events, window, now), **_SUM_TOL
            )
            assert counted >= first_w

    @given(
        gaps=_gaps,
        window=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        query_every=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=200)
    def test_interleaved_queries_equal_eager_recompute(
        self, gaps, window, query_every
    ):
        """Lazy + amortized eviction must be invisible to every query."""
        events = _events_from_gaps(gaps)
        wr = WindowedRate(window=window)
        for i, (t, w) in enumerate(events):
            wr.record(t, w)
            if i % query_every == 0:
                seen = events[: i + 1]
                assert wr.count(t) == pytest.approx(
                    _eager_count(seen, window, t), **_SUM_TOL
                )
                assert wr.rate(t) == pytest.approx(
                    _eager_rate(seen, window, t), **_SUM_TOL
                )

    @given(
        gaps=_gaps,
        window=st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        after=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_rate_is_count_over_clamped_elapsed(self, gaps, window, after):
        events = _events_from_gaps(gaps)
        wr = WindowedRate(window=window)
        for t, w in events:
            wr.record(t, w)
        now = events[-1][0] + after
        assert wr.rate(now) == pytest.approx(
            _eager_rate(events, window, now), **_SUM_TOL
        )


class TestTimeSeriesProperties:
    @given(
        gaps=_gaps,
        start=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        length=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_window_query_matches_naive_filter(self, gaps, start, length):
        events = _events_from_gaps(gaps)
        ts = TimeSeries("prop")
        for t, v in events:
            ts.record(t, v)
        end = start + length
        assert ts.window(start, end) == [
            (t, v) for t, v in events if start <= t < end
        ]


class TestEwmaProperties:
    @given(
        steps=st.integers(min_value=1, max_value=50),
        total=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        tau=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        start=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        target=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_time_constant_invariant_under_sample_rate(
        self, steps, total, tau, start, target
    ):
        """N small steps toward a constant target == one big step of the
        same total duration: the decay is per unit time, not per sample."""
        fine = EwmaEstimator(time_constant=tau, initial=0.0)
        coarse = EwmaEstimator(time_constant=tau, initial=0.0)
        fine.update(0.0, start)
        coarse.update(0.0, start)
        for i in range(1, steps + 1):
            fine.update(i * total / steps, target)
        coarse.update(total, target)
        assert fine.value == pytest.approx(coarse.value, rel=1e-9, abs=1e-12)

    @given(
        tau=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        total=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_one_time_constant_closes_the_canonical_fraction(self, tau, total):
        e = EwmaEstimator(time_constant=tau, initial=0.0)
        e.update(0.0, 0.0)
        e.update(total, 1.0)
        assert e.value == pytest.approx(
            1.0 - math.exp(-total / tau), rel=1e-9
        )
