"""Hysteresis behavior of the SLO breach detector."""

import pytest

from repro.metrics.bus import BusSnapshot
from repro.metrics.slo import BreachDetector, SloPolicy


def snap(p99_ms, count=10, time=0.0):
    return BusSnapshot(
        time=time, seq=0, window=0.1, window_count=count, completed=count,
        latency_p50_ms=p99_ms / 2, latency_p99_ms=p99_ms,
        arrival_rate=100.0, served_rate=100.0, queue_depths=(),
    )


class TestSloPolicyValidation:
    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError):
            SloPolicy(p99_target_ms=0.0)

    def test_rejects_non_positive_streaks(self):
        with pytest.raises(ValueError):
            SloPolicy(p99_target_ms=10.0, breach_after=0)
        with pytest.raises(ValueError):
            SloPolicy(p99_target_ms=10.0, clear_after=0)


class TestHysteresis:
    def test_breach_needs_consecutive_over_windows(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=2, clear_after=3)
        )
        assert detector.observe(snap(15.0)) is None  # 1 of 2
        assert not detector.breached
        assert detector.observe(snap(15.0)) == "breach"
        assert detector.breached
        assert detector.breaches == 1

    def test_interrupted_streak_starts_over(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=2, clear_after=3)
        )
        assert detector.observe(snap(15.0)) is None
        assert detector.observe(snap(5.0)) is None  # streak broken
        assert detector.observe(snap(15.0)) is None  # back to 1 of 2
        assert detector.observe(snap(15.0)) == "breach"

    def test_clear_needs_longer_under_streak(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=2, clear_after=3)
        )
        detector.observe(snap(15.0))
        detector.observe(snap(15.0))
        assert detector.breached
        assert detector.observe(snap(5.0)) is None  # 1 of 3
        assert detector.observe(snap(5.0)) is None  # 2 of 3
        assert detector.observe(snap(5.0)) == "clear"
        assert not detector.breached

    def test_flapping_inside_a_breach_does_not_clear(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=2, clear_after=3)
        )
        detector.observe(snap(15.0))
        detector.observe(snap(15.0))
        for p99 in (5.0, 5.0, 15.0, 5.0, 5.0):  # never 3 consecutive unders
            assert detector.observe(snap(p99)) is None
        assert detector.breached

    def test_repeated_episodes_count_separately(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=1, clear_after=1)
        )
        assert detector.observe(snap(20.0)) == "breach"
        assert detector.observe(snap(1.0)) == "clear"
        assert detector.observe(snap(20.0)) == "breach"
        assert detector.breaches == 2


class TestWindowAccounting:
    def test_thin_windows_are_skipped_entirely(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=1, min_window_count=5)
        )
        assert detector.observe(snap(100.0, count=4)) is None
        assert not detector.breached
        assert detector.windows_evaluated == 0

    def test_breach_windows_count_every_over_window(self):
        detector = BreachDetector(
            SloPolicy(p99_target_ms=10.0, breach_after=2, clear_after=2)
        )
        for p99 in (15.0, 15.0, 15.0, 5.0, 5.0):
            detector.observe(snap(p99))
        assert detector.windows_evaluated == 5
        assert detector.breach_windows == 3
        assert detector.breaches == 1

    def test_extras_are_float_valued(self):
        detector = BreachDetector(SloPolicy(p99_target_ms=10.0))
        detector.observe(snap(15.0))
        extras = detector.extras()
        assert extras["slo_windows_evaluated"] == 1.0
        assert all(isinstance(v, float) for v in extras.values())
        assert set(extras) == {
            "slo_windows_evaluated", "slo_breach_windows", "slo_breaches",
        }
