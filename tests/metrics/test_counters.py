"""Unit tests for counters, gauges and the registry."""

import pytest

from repro.metrics import MetricRegistry


class TestCounter:
    def test_increment(self):
        reg = MetricRegistry()
        c = reg.counter("x")
        c.increment()
        c.increment(5)
        assert c.value == 6
        assert int(c) == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("x").increment(-1)


class TestGauge:
    def test_set_and_add(self):
        g = MetricRegistry().gauge("depth")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0

    def test_tracks_max(self):
        g = MetricRegistry().gauge("depth")
        g.set(5.0)
        g.set(2.0)
        assert g.max_value == 5.0


class TestRegistry:
    def test_memoizes_by_name(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")

    def test_snapshot_merges(self):
        reg = MetricRegistry()
        reg.counter("sent").increment(3)
        reg.gauge("queue").set(1.5)
        snap = reg.snapshot()
        assert snap == {"sent": 3, "queue": 1.5}

    def test_counters_sorted(self):
        reg = MetricRegistry()
        reg.counter("b").increment()
        reg.counter("a").increment()
        assert list(reg.counters()) == ["a", "b"]
