"""CLI tests for the span-trace workflow: record, analyse, diff."""

import json

import pytest

from repro.cli import main


def record(path, strategy, extra=()):
    return main([
        "run", "--scenario", "hot-shard", "--strategy", strategy,
        "--tasks", "300", "--trace-out", str(path), *extra,
    ])


class TestRecordFlags:
    def test_trace_out_implies_full_sampling(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert record(path, "c3") == 0
        out = capsys.readouterr().out
        assert "span tree(s)" in out
        # 300 tasks minus 5% warmup, all sampled.
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["kind"] == "meta"
        assert meta["sample"] == 1.0
        assert meta["warmup_tasks"] == 15

    def test_explicit_sample_rate_is_respected(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert record(path, "c3", ("--trace-sample", "0.25")) == 0
        capsys.readouterr()
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["sample"] == 0.25

    def test_multi_seed_appends_per_seed_blocks(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert record(path, "c3", ("--seeds", "2")) == 0
        capsys.readouterr()
        metas = [
            json.loads(line) for line in path.read_text().splitlines()
            if json.loads(line)["kind"] == "meta"
        ]
        assert [m["seed"] for m in metas] == [1, 2]

    def test_bad_sample_rate_is_a_clean_config_error(self, capsys):
        assert main([
            "run", "--strategy", "c3", "--tasks", "50",
            "--trace-sample", "1.5",
        ]) == 2
        assert "trace_sample" in capsys.readouterr().err


class TestAnalysisCommands:
    def make_artifacts(self, tmp_path, capsys):
        a = tmp_path / "c3.jsonl"
        b = tmp_path / "credits.jsonl"
        assert record(a, "c3") == 0
        assert record(b, "unifincr-credits") == 0
        capsys.readouterr()
        return a, b

    def test_attribution_table(self, tmp_path, capsys):
        a, b = self.make_artifacts(tmp_path, capsys)
        assert main(["trace", "attribution", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "c3 / hot-shard" in out
        assert "unifincr-credits / hot-shard" in out
        assert "queue_wait" in out
        assert "partition" in out

    def test_attribution_json_shares_sum_to_one(self, tmp_path, capsys):
        a, _ = self.make_artifacts(tmp_path, capsys)
        assert main(["trace", "attribution", str(a), "--json"]) == 0
        (result,) = json.loads(capsys.readouterr().out)
        assert result["strategy"] == "c3"
        assert sum(result["shares"].values()) == pytest.approx(1.0)

    def test_slowest_dump(self, tmp_path, capsys):
        a, _ = self.make_artifacts(tmp_path, capsys)
        assert main(["trace", "slowest", str(a), "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 slowest traces" in out
        assert "trace_id=0x" in out

    def test_diff_two_groups(self, tmp_path, capsys):
        a, b = self.make_artifacts(tmp_path, capsys)
        assert main(["trace", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "A=c3/hot-shard" in out
        assert "B=unifincr-credits/hot-shard" in out
        assert "B-A" in out

    def test_diff_with_selectors(self, tmp_path, capsys):
        a, b = self.make_artifacts(tmp_path, capsys)
        assert main([
            "trace", "diff", str(a), str(b),
            "--a", "unifincr-credits", "--b", "c3/hot-shard",
        ]) == 0
        assert "A=unifincr-credits" in capsys.readouterr().out

    def test_diff_refuses_ambiguous_input(self, tmp_path, capsys):
        a, _ = self.make_artifacts(tmp_path, capsys)
        assert main(["trace", "diff", str(a)]) == 2
        assert "exactly" in capsys.readouterr().err

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["trace", "attribution", str(tmp_path / "nope.jsonl")]) == 2
        assert "bad trace artifact" in capsys.readouterr().err

    def test_corrupt_artifact_names_the_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "what"}\n', encoding="utf-8")
        assert main(["trace", "slowest", str(bad)]) == 2
        assert "bad.jsonl:1" in capsys.readouterr().err


class TestWatchFlags:
    def test_json_and_prometheus_are_mutually_exclusive(self, capsys):
        assert main([
            "watch", "--json", "--prometheus", "--count", "1",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_watch_refuses_unreachable_server(self, capsys):
        assert main(["watch", "--port", "1", "--count", "1"]) == 1
        assert "watch failed" in capsys.readouterr().err
