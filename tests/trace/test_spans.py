"""Unit tests for span trees and their segment decomposition."""

import math

import pytest

from repro.trace import RESERVED_KINDS, SEGMENT_KINDS, Span, TaskTrace


def make_span(**overrides):
    base = dict(
        server=2, partition=1, key=42, hedge=False,
        created=1.0, dispatched=1.2, enqueued=1.25,
        service_start=1.5, completed=1.9, end=1.95,
    )
    base.update(overrides)
    return Span(**base)


class TestSpanSegments:
    def test_segments_telescope_to_duration(self):
        span = make_span()
        assert math.isclose(
            sum(span.segments().values()), span.duration, rel_tol=1e-12
        )

    def test_segment_values(self):
        segments = make_span().segments()
        assert segments["credit_wait"] == pytest.approx(0.2)
        assert segments["network_out"] == pytest.approx(0.05)
        assert segments["queue_wait"] == pytest.approx(0.25)
        assert segments["service"] == pytest.approx(0.4)
        assert segments["network_in"] == pytest.approx(0.05)

    def test_hedge_span_reports_hedge_wait_not_credit_wait(self):
        segments = make_span(hedge=True).segments()
        assert "hedge_wait" in segments
        assert "credit_wait" not in segments
        assert segments["hedge_wait"] == pytest.approx(0.2)

    def test_every_segment_kind_is_declared(self):
        for hedge in (False, True):
            for kind in make_span(hedge=hedge).segments():
                assert kind in SEGMENT_KINDS

    def test_reserved_kinds_are_not_produced(self):
        assert not set(RESERVED_KINDS) & set(make_span().segments())
        assert not set(RESERVED_KINDS) & set(SEGMENT_KINDS)

    def test_dict_roundtrip(self):
        span = make_span(hedge=True)
        assert Span.from_dict(span.to_dict()) == span


class TestTaskTrace:
    def make_trace(self):
        fast = make_span(end=1.6, completed=1.55)
        slow = make_span(
            server=0, partition=0, created=1.1, dispatched=1.3,
            enqueued=1.35, service_start=2.0, completed=2.4, end=2.45,
        )
        return TaskTrace(
            trace_id=99, task_id=7, client_id=3,
            start=0.9, end=2.45, spans=[fast, slow],
        )

    def test_latency_is_end_minus_start(self):
        assert self.make_trace().latency == pytest.approx(1.55)

    def test_critical_span_is_the_last_to_finish(self):
        trace = self.make_trace()
        assert trace.critical_span().partition == 0

    def test_critical_path_sums_exactly_to_latency(self):
        trace = self.make_trace()
        total = sum(value for _, value, _ in trace.critical_path())
        assert math.isclose(total, trace.latency, rel_tol=1e-12)

    def test_critical_path_starts_with_sched_lag(self):
        kind, value, span = self.make_trace().critical_path()[0]
        assert kind == "sched_lag"
        assert value == pytest.approx(0.2)  # 1.1 - 0.9
        assert span.partition == 0

    def test_critical_path_kinds_are_declared(self):
        for kind, _, _ in self.make_trace().critical_path():
            assert kind in SEGMENT_KINDS

    def test_empty_trace_has_no_critical_span(self):
        trace = TaskTrace(
            trace_id=1, task_id=1, client_id=0, start=0.0, end=1.0, spans=[]
        )
        with pytest.raises(ValueError, match="no spans"):
            trace.critical_span()

    def test_dict_roundtrip(self):
        trace = self.make_trace()
        assert TaskTrace.from_dict(trace.to_dict()) == trace

    def test_from_dict_tolerates_missing_spans(self):
        raw = self.make_trace().to_dict()
        del raw["spans"]
        assert TaskTrace.from_dict(raw).spans == []
