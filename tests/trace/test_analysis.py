"""Unit tests for the JSONL trace store and critical-path attribution."""

import json
import math

import pytest

from repro.trace import (
    RunTraces,
    Span,
    TaskTrace,
    attribution,
    diff_attributions,
    load_traces,
    render_attribution,
    render_diff,
    render_slowest,
    slowest,
    write_traces,
)


def make_trace(task_id, latency, partition=0, queue_share=0.5, start=0.0):
    """One single-span trace whose queue_wait is ``queue_share`` of latency."""
    end = start + latency
    queue = latency * queue_share
    rest = (latency - queue) / 4.0
    span = Span(
        server=partition, partition=partition, key=task_id, hedge=False,
        created=start, dispatched=start + rest, enqueued=start + 2 * rest,
        service_start=start + 2 * rest + queue,
        completed=start + 3 * rest + queue, end=end,
    )
    return TaskTrace(
        trace_id=task_id, task_id=task_id, client_id=0,
        start=start, end=end, spans=[span],
    )


def make_group(traces, strategy="c3", scenario="hot-shard"):
    return RunTraces(
        strategy=strategy, scenario=scenario, realm="sim", sample=1.0,
        seeds=[1], n_tasks=len(traces), traces=list(traces),
    )


META = {
    "strategy": "c3", "scenario": "hot-shard", "seed": 1, "realm": "sim",
    "sample": 1.0, "n_tasks": 3, "warmup_tasks": 0,
}


class TestJsonlStore:
    def test_write_then_load_roundtrips(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        traces = [make_trace(i, 0.01 * (i + 1)) for i in range(3)]
        assert write_traces(str(path), traces, META) == 3
        (group,) = load_traces([str(path)])
        assert group.key == ("c3", "hot-shard")
        assert group.realm == "sim"
        assert group.sample == 1.0
        assert group.seeds == [1]
        assert group.n_tasks == 3
        assert group.traces == traces

    def test_append_merges_seeds_into_one_group(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        write_traces(str(path), [make_trace(1, 0.01)], META)
        write_traces(
            str(path), [make_trace(2, 0.02)], {**META, "seed": 2}, append=True
        )
        (group,) = load_traces([str(path)])
        assert group.seeds == [1, 2]
        assert group.n_tasks == 6
        assert len(group.traces) == 2

    def test_files_concatenate_into_groups(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_traces(str(a), [make_trace(1, 0.01)], META)
        write_traces(
            str(b), [make_trace(2, 0.02)], {**META, "strategy": "hedged"}
        )
        groups = load_traces([str(a), str(b)])
        assert [g.key for g in groups] == [
            ("c3", "hot-shard"), ("hedged", "hot-shard"),
        ]

    def test_trace_before_meta_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        record = {"kind": "trace", **make_trace(1, 0.01).to_dict()}
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="before any meta"):
            load_traces([str(path)])

    def test_unknown_kind_is_an_error_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: unknown record"):
            load_traces([str(path)])

    def test_non_json_line_is_an_error_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: not JSON"):
            load_traces([str(path)])

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        write_traces(str(path), [make_trace(1, 0.01)], META)
        path.write_text(
            path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8"
        )
        (group,) = load_traces([str(path)])
        assert len(group.traces) == 1


class TestAttribution:
    def test_shares_sum_to_one(self):
        group = make_group(
            [make_trace(i, 0.001 * (i + 1)) for i in range(100)]
        )
        result = attribution(group, tail=90.0)
        assert math.isclose(sum(result.shares.values()), 1.0, rel_tol=1e-9)

    def test_tail_selection_uses_the_percentile_threshold(self):
        group = make_group(
            [make_trace(i, 0.001 * (i + 1)) for i in range(100)]
        )
        result = attribution(group, tail=99.0)
        assert result.n_traces == 100
        # Nearest-rank p99 over 1..100 ms lands on 99 ms; traces at or
        # above the threshold form the tail (99 ms and 100 ms).
        assert result.n_tail == 2
        assert result.threshold == pytest.approx(0.099)
        assert result.tail_mean == pytest.approx(0.0995)

    def test_queue_dominated_tail_attributes_to_the_hot_partition(self):
        fast = [make_trace(i, 0.001, queue_share=0.0) for i in range(95)]
        slow = [
            make_trace(100 + i, 0.050, partition=3, queue_share=0.9)
            for i in range(5)
        ]
        result = attribution(make_group(fast + slow), tail=96.0)
        kind, share = result.dominant()
        assert kind == "queue_wait"
        assert share > 0.8
        assert result.queue_by_partition[3] == pytest.approx(share)

    def test_tail_zero_covers_every_trace(self):
        group = make_group([make_trace(i, 0.01) for i in range(10)])
        assert attribution(group, tail=0.0).n_tail == 10

    def test_empty_group_raises(self):
        with pytest.raises(ValueError, match="no traces"):
            attribution(make_group([]))

    def test_bad_tail_raises(self):
        group = make_group([make_trace(1, 0.01)])
        with pytest.raises(ValueError, match="tail percentile"):
            attribution(group, tail=100.0)

    def test_to_dict_is_json_safe(self):
        group = make_group([make_trace(i, 0.01, partition=2) for i in range(4)])
        out = attribution(group, tail=0.0).to_dict()
        json.dumps(out)  # must not raise
        assert out["queue_by_partition"] == {"2": pytest.approx(0.5)}


class TestSlowestAndDiff:
    def test_slowest_orders_by_latency_desc(self):
        group = make_group([make_trace(i, 0.001 * (i + 1)) for i in range(10)])
        picks = slowest(group, k=3)
        assert [t.task_id for t in picks] == [9, 8, 7]

    def test_diff_is_b_minus_a(self):
        a = attribution(
            make_group([make_trace(1, 0.01, queue_share=0.8)]), tail=0.0
        )
        b = attribution(
            make_group(
                [make_trace(1, 0.01, queue_share=0.2)], strategy="hedged"
            ),
            tail=0.0,
        )
        deltas = diff_attributions(a, b)
        assert deltas["queue_wait"] == pytest.approx(-0.6)

    def test_renderers_produce_inspectable_text(self):
        group = make_group([make_trace(i, 0.001 * (i + 1)) for i in range(10)])
        result = attribution(group, tail=50.0)
        table = render_attribution(result)
        assert "c3 / hot-shard" in table
        assert "queue_wait" in table
        assert "partition 0" in table
        dump = render_slowest(group, slowest(group, k=2))
        assert "2 slowest traces" in dump
        assert "trace_id=0x" in dump
        other = attribution(
            make_group(group.traces, strategy="hedged"), tail=50.0
        )
        diff_text = render_diff(result, other)
        assert "A=c3/hot-shard" in diff_text
        assert "B=hedged/hot-shard" in diff_text
        assert "B-A" in diff_text
