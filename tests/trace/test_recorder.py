"""Unit tests for the sampling span recorder."""

import pytest

from repro.cluster.messages import RequestMessage, TaskCompletion
from repro.trace import TraceRecorder, is_sampled, trace_hash
from repro.trace.recorder import _SCALE
from repro.workload.tasks import Operation, Task


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def make_request(task_id, key=1, **overrides):
    base = dict(
        op=Operation(op_id=key, task_id=task_id, key=key, value_size=100),
        task_id=task_id, client_id=0, partition=0, server_id=1,
        created_at=1.0, dispatched_at=1.1, enqueued_at=1.2,
        service_start_at=1.3, completed_at=1.4,
    )
    base.update(overrides)
    return RequestMessage(**base)


def make_completion(task_id, completed_at=2.0, arrival_time=0.5):
    task = Task(
        task_id=task_id, arrival_time=arrival_time, client_id=0,
        operations=(
            Operation(op_id=0, task_id=task_id, key=1, value_size=100),
        ),
    )
    return TaskCompletion(task=task, completed_at=completed_at)


class TestSampling:
    def test_hash_is_deterministic(self):
        assert trace_hash(123) == trace_hash(123)
        assert trace_hash(123) != trace_hash(124)

    def test_rate_zero_samples_nothing(self):
        assert not any(is_sampled(i, 0.0) for i in range(1000))

    def test_rate_one_samples_everything(self):
        assert all(is_sampled(i, 1.0) for i in range(1000))

    def test_sampled_fraction_tracks_the_rate(self):
        n = 20_000
        hits = sum(is_sampled(i, 0.1) for i in range(n))
        # Binomial(n, 0.1): 5 sigma ~ 0.0106.
        assert abs(hits / n - 0.1) < 0.011

    def test_lower_rate_set_is_a_subset_of_higher(self):
        low = {i for i in range(5000) if is_sampled(i, 0.05)}
        high = {i for i in range(5000) if is_sampled(i, 0.25)}
        assert low <= high

    def test_sampling_matches_the_hash_threshold(self):
        for task_id in range(200):
            expected = trace_hash(task_id) / _SCALE < 0.3
            assert is_sampled(task_id, 0.3) == expected


class TestTraceRecorder:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="sample"):
            TraceRecorder(FakeClock(), sample=1.5)
        with pytest.raises(ValueError, match="ring"):
            TraceRecorder(FakeClock(), sample=0.5, ring=0)

    def test_warmup_tasks_are_never_sampled(self):
        recorder = TraceRecorder(FakeClock(), sample=1.0, warmup_tasks=10)
        assert not recorder.sampled(9)
        assert recorder.sampled(10)
        assert recorder.wire_trace_id(make_request(9)) is None
        assert recorder.wire_trace_id(make_request(10)) == trace_hash(10)

    def test_records_a_span_tree_for_a_sampled_task(self):
        clock = FakeClock(1.45)
        recorder = TraceRecorder(clock, sample=1.0)
        recorder.observe_request(make_request(7, key=11))
        clock.now = 1.47
        recorder.observe_request(make_request(7, key=12, partition=2))
        recorder.on_complete(make_completion(7, completed_at=1.47))
        (trace,) = recorder.traces
        assert trace.task_id == 7
        assert trace.trace_id == trace_hash(7)
        assert trace.start == 0.5
        assert trace.end == 1.47
        assert [s.key for s in trace.spans] == [11, 12]
        assert trace.spans[0].end == 1.45  # stamped at observation time
        assert trace.spans[1].partition == 2

    def test_unsampled_tasks_leave_no_record(self):
        recorder = TraceRecorder(FakeClock(), sample=0.0)
        recorder.observe_request(make_request(1))
        recorder.on_complete(make_completion(1))
        assert recorder.traces == []
        assert recorder.extras()["trace_sampled"] == 0.0

    def test_ring_evicts_oldest_but_counts_everything(self):
        recorder = TraceRecorder(FakeClock(), sample=1.0, ring=2)
        for task_id in range(4):
            recorder.observe_request(make_request(task_id))
            recorder.on_complete(make_completion(task_id))
        traces = recorder.traces
        assert [t.task_id for t in traces] == [2, 3]
        extras = recorder.extras()
        assert extras["trace_sampled"] == 4.0
        assert extras["trace_spans"] == 4.0
        assert extras["trace_evicted"] == 2.0

    def test_extras_are_floats_with_stable_keys(self):
        extras = TraceRecorder(FakeClock(), sample=0.5).extras()
        assert set(extras) == {
            "trace_sampled", "trace_spans", "trace_evicted",
        }
        assert all(isinstance(v, float) for v in extras.values())

    def test_hedge_flag_propagates_to_the_span(self):
        recorder = TraceRecorder(FakeClock(), sample=1.0)
        recorder.observe_request(make_request(3, hedge=True))
        recorder.on_complete(make_completion(3))
        (trace,) = recorder.traces
        assert trace.spans[0].hedge
        assert "hedge_wait" in trace.spans[0].segments()
