"""Tracing wired through the simulated realm: invariants and goldens.

The two contracts the sim realm guarantees:

* critical-path segment durations sum to the task's measured latency
  (the acceptance bound is 1%; floating-point telescoping makes it
  essentially exact), and
* turning sampling on changes *nothing* about the schedule — the
  RunResult golden surface is byte-identical, because sampling is a pure
  task-id hash outside every RNG stream and adds no calendar events.
"""

import json
import math

import pytest

from repro.harness import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.scenarios import get_scenario
from repro.trace import is_sampled


def hot_shard_config(**overrides):
    return get_scenario("hot-shard").build_config(
        strategy="unifincr-credits", n_tasks=400, **overrides
    )


def golden_surface(result):
    """The comparable summary: to_dict minus the trace audit extras."""
    raw = json.loads(json.dumps(result.to_dict()))
    raw["extras"] = {
        k: v for k, v in raw["extras"].items() if not k.startswith("trace_")
    }
    return raw


class TestCriticalPathInvariant:
    def test_segments_sum_to_measured_latency(self):
        result = run_experiment(hot_shard_config(trace_sample=1.0), seed=1)
        assert result.traces
        for trace in result.traces:
            total = sum(v for _, v, _ in trace.critical_path())
            assert math.isclose(total, trace.latency, rel_tol=1e-9)

    def test_sched_lag_is_zero_in_the_sim(self):
        result = run_experiment(hot_shard_config(trace_sample=1.0), seed=1)
        for trace in result.traces[:50]:
            kind, value, _ = trace.critical_path()[0]
            assert kind == "sched_lag"
            assert value == pytest.approx(0.0, abs=1e-12)

    def test_hedged_runs_label_hedge_spans(self):
        config = get_scenario("hot-shard").build_config(
            strategy="hedged", n_tasks=400, trace_sample=1.0
        )
        result = run_experiment(config, seed=1)
        hedged = [
            s for t in result.traces for s in t.spans if s.hedge
        ]
        assert hedged  # the hot shard forces hedges at this scale
        for span in hedged[:20]:
            assert "hedge_wait" in span.segments()


class TestGoldenNeutrality:
    def test_sampling_on_leaves_the_golden_surface_identical(self):
        config_off = hot_shard_config()
        config_on = hot_shard_config(trace_sample=1.0)
        off = run_experiment(config_off, seed=3)
        on = run_experiment(config_on, seed=3)
        assert golden_surface(off) == golden_surface(on)
        assert off.traces is None
        assert on.traces

    def test_trace_extras_only_appear_when_sampling(self):
        off = run_experiment(hot_shard_config(), seed=1)
        on = run_experiment(hot_shard_config(trace_sample=0.5), seed=1)
        assert not any(k.startswith("trace_") for k in off.extras)
        assert on.extras["trace_sampled"] > 0
        assert on.extras["trace_spans"] >= on.extras["trace_sampled"]
        assert on.extras["trace_evicted"] == 0.0

    def test_to_dict_never_carries_raw_traces(self):
        on = run_experiment(hot_shard_config(trace_sample=1.0), seed=1)
        assert "traces" not in on.to_dict()


class TestSampledSubset:
    def test_recorded_tasks_match_the_hash_predicate(self):
        config = hot_shard_config(trace_sample=0.3)
        result = run_experiment(config, seed=1)
        warmup = int(config.warmup_fraction * config.n_tasks)
        recorded = {t.task_id for t in result.traces}
        expected = {
            task_id for task_id in range(warmup, config.n_tasks)
            if is_sampled(task_id, 0.3)
        }
        assert recorded == expected

    def test_partial_sample_is_a_subset_of_full(self):
        partial = run_experiment(hot_shard_config(trace_sample=0.3), seed=1)
        full = run_experiment(hot_shard_config(trace_sample=1.0), seed=1)
        partial_ids = {t.task_id for t in partial.traces}
        full_ids = {t.task_id for t in full.traces}
        assert partial_ids < full_ids

    def test_bad_sample_rate_is_rejected_by_config(self):
        with pytest.raises(ValueError, match="trace_sample"):
            ExperimentConfig(strategy="c3", n_tasks=10, trace_sample=1.5)
